"""Command-line interface: ``python -m repro <command>``.

Commands mirror how the MLPerf artifacts are used in practice:

- ``table1`` — print the benchmark suite;
- ``run`` — execute timed runs of a benchmark (optionally scoring them and
  saving submission artifacts);
- ``campaign`` — run every (benchmark, seed) cell a submission needs
  through the execution engine: parallel workers (``--jobs``), per-cell
  retry with backoff, and a journal that makes ``--resume DIR`` skip
  completed cells;
- ``review`` — compliance-review a saved submission directory;
- ``report`` — build the published per-benchmark results table from saved
  submissions;
- ``trace`` — convert a saved training-session log into a Chrome-loadable
  ``trace_event`` file (``run --trace FILE`` records one live, with spans
  down to individual training steps);
- ``stats`` — print the per-benchmark time-decomposition table for saved
  submissions (where the wall-clock went: init/create/train/eval);
  ``--series`` adds the per-run sampled trajectories (throughput, eval
  quality, arena hit rate) with ASCII sparklines;
- ``monitor`` — a refreshable terminal view of a campaign directory,
  live or post-mortem, built purely from the journal + heartbeat + event
  files (per-job state, progress, retries, ETA, stall detection);
- ``bench-diff`` — gate a fresh ``BENCH_*.json`` report against a
  committed baseline with per-metric tolerance bands; non-zero exit on
  regression (CI's perf gate), with per-op attribution when a timing
  gate trips and ``--json`` for machine-readable output;
- ``profile`` — render the op-level profile a run recorded
  (``REPRO_PROFILE=sampled|full``) from a result file, submission, or
  campaign directory;
- ``analyze`` — run the trace-analysis engine on a Chrome trace file or
  a campaign directory: critical path, comms/compute overlap, top
  spans/gaps, optional folded-stacks export;
- ``bench-profile`` — measure profiler overhead per mode against a
  no-telemetry baseline (the profile-smoke CI gate);
- ``bench-step`` — benchmark whole training steps under the compiled
  executor (``REPRO_KERNEL_MODE=compiled``) against fused eager, with
  multi-step bit-identity and plan-cache checks (the step-bench CI gate);
- ``serve-metrics`` — the live observability server: Prometheus text at
  ``/metrics``, a JSON API (``/api/campaigns``, ``.../jobs``,
  ``/api/runs/.../series``, ``/api/alerts``), and an SSE stream at
  ``/events``, all tailed incrementally from campaign files;
- ``alerts`` — deterministically replay a campaign's event streams
  through the declarative alert rules (stall, heartbeat loss, quality
  regression, throughput drop, arena hit-rate drop), writing
  ``alerts.jsonl`` and printing the firing/resolved timeline;
- ``hp-table`` — print the §6 scale → hyperparameters recommendation table;
- ``simulate`` — print the Figure 4/5 round-simulation summaries.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MLPerf Training Benchmark reproduction harness",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    table1 = sub.add_parser("table1", help="print the benchmark suite (Table 1)")
    table1.add_argument("--json", action="store_true",
                        help="emit the suite as JSON (name, dataset, model, "
                             "thresholds, hyperparameters) for external drivers")

    run = sub.add_parser("run", help="run timed training sessions of a benchmark")
    run.add_argument("benchmark", help="benchmark name (see `repro table1`)")
    run.add_argument("--seeds", type=int, default=1,
                     help="number of seeded runs (default 1; use the spec's "
                          "required count for a scoreable set)")
    run.add_argument("--score", action="store_true",
                     help="apply the §3.2.2 scoring rule (needs >= 3 runs)")
    run.add_argument("--override", action="append", default=[],
                     metavar="KEY=VALUE", help="hyperparameter override (JSON value)")
    run.add_argument("--save", metavar="DIR",
                     help="save submission artifacts under DIR")
    run.add_argument("--submitter", default="cli-user",
                     help="submitter name for saved artifacts")
    run.add_argument("--trace", metavar="FILE",
                     help="record trace spans and write a Chrome trace_event "
                          "JSON file (open in chrome://tracing or Perfetto)")

    campaign = sub.add_parser(
        "campaign",
        help="run a full multi-benchmark, multi-seed campaign through the "
             "execution engine (parallel, resumable, fault-tolerant)")
    campaign.add_argument("benchmarks", nargs="*", metavar="BENCHMARK",
                          help="benchmark names (default: the whole Table 1 suite)")
    campaign.add_argument("--seeds", type=int, default=None,
                          help="runs per benchmark (default: each benchmark's "
                               "§3.2.2 required count; overriding below it "
                               "makes the result unofficial)")
    campaign.add_argument("--jobs", type=int, default=1,
                          help="worker processes (1 = in-process sequential "
                               "executor, the deterministic default)")
    campaign.add_argument("--processes-per-job", type=int, default=1,
                          help="cores each job occupies (set to dp_workers "
                               "when overriding it >1 so the outer pool "
                               "shrinks instead of oversubscribing)")
    campaign.add_argument("--retries", type=int, default=2,
                          help="per-cell retry cap for faulted runs")
    campaign.add_argument("--backoff", type=float, default=0.05,
                          help="base retry backoff in seconds (doubles per "
                               "attempt, capped at 2s)")
    campaign.add_argument("--timeout", type=float, default=None,
                          help="per-job wall-clock budget in seconds "
                               "(timeouts are terminal, not retried)")
    campaign.add_argument("--override", action="append", default=[],
                          metavar="KEY=VALUE",
                          help="hyperparameter override applied to every "
                               "selected benchmark (JSON value)")
    campaign.add_argument("--save", metavar="DIR",
                          help="campaign directory: journal, per-job results, "
                               "and submission artifacts live here")
    campaign.add_argument("--resume", metavar="DIR",
                          help="resume a campaign from DIR's journal, running "
                               "only the remaining (benchmark, seed) cells "
                               "(implies --save DIR)")
    campaign.add_argument("--submitter", default="cli-user",
                          help="submitter name for saved artifacts")
    campaign.add_argument("--trace", metavar="FILE",
                          help="write one merged Chrome trace of every run "
                               "(workers compose on pid=seed rows)")
    campaign.add_argument("--bench", metavar="FILE",
                          help="write campaign perf stats JSON "
                               "(BENCH_campaign.json format)")

    review = sub.add_parser("review", help="compliance-review a saved submission")
    review.add_argument("submission_dir", help="submitter directory (from `run --save`)")

    report = sub.add_parser("report", help="render the results table from submissions")
    report.add_argument("submission_dirs", nargs="+", help="submitter directories")

    trace = sub.add_parser(
        "trace", help="convert a saved run log into a Chrome trace_event file")
    trace.add_argument("log_file",
                       help="a result_*.txt from `run --save` (or any file "
                            "containing :::MLLOG lines)")
    trace.add_argument("-o", "--out", metavar="FILE",
                       help="output path (default: <log_file>.trace.json)")

    stats = sub.add_parser(
        "stats", help="per-benchmark time decomposition for saved submissions")
    stats.add_argument("submission_dirs", nargs="+",
                       help="submitter directories (from `run --save`)")
    stats.add_argument("--series", action="store_true",
                       help="also print the per-run sampled series "
                            "(throughput, eval quality, arena hit rate, "
                            "all-reduce traffic) with ASCII trend lines")

    monitor = sub.add_parser(
        "monitor",
        help="terminal view of a campaign directory (live or post-mortem): "
             "per-job state, progress, retries, ETA, stall detection — built "
             "purely from the journal, heartbeat, and event files")
    monitor.add_argument("campaign_dir",
                         help="a campaign directory (from `campaign --save`)")
    monitor.add_argument("--stall-after", type=float, default=None,
                         metavar="SECONDS",
                         help="flag running jobs whose heartbeat is older "
                              "than this as STALLED (default 30)")
    monitor.add_argument("--watch", type=float, default=None, metavar="SECONDS",
                         help="refresh every SECONDS until the campaign "
                              "settles (default: render once and exit)")
    monitor.add_argument("--events", type=int, default=6, metavar="N",
                         help="how many recent events to tail (default 6; "
                              "0 hides the tail)")

    serve = sub.add_parser(
        "serve-metrics",
        help="HTTP observability server over campaign directories: "
             "Prometheus text at /metrics, JSON API under /api/, and a "
             "Server-Sent Events stream at /events — file-tailing only, "
             "safe to point at campaigns run by other processes")
    serve.add_argument("root",
                       help="a campaign directory, or a directory whose "
                            "subdirectories are campaigns")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default %(default)s)")
    serve.add_argument("--port", type=int, default=8080,
                       help="bind port (default %(default)s; 0 picks an "
                            "ephemeral port)")
    serve.add_argument("--rules", metavar="FILE",
                       help="JSON alert-rules file (default: one rule of "
                            "every kind at documented thresholds)")
    serve.add_argument("--stall-after", type=float, default=None,
                       metavar="SECONDS",
                       help="stall threshold for the monitor view "
                            "(default 30)")
    serve.add_argument("--refresh", type=float, default=0.5,
                       metavar="SECONDS",
                       help="minimum interval between file polls; "
                            "concurrent scrapes coalesce (default 0.5)")
    serve.add_argument("--no-alerts-log", action="store_true",
                       help="do not append alert transitions to each "
                            "campaign's alerts.jsonl")

    alerts = sub.add_parser(
        "alerts",
        help="replay a campaign's event streams through the alert rules: "
             "print the firing/resolved timeline and write alerts.jsonl "
             "(deterministic: identical streams give identical files)")
    alerts.add_argument("campaign_dir",
                        help="a campaign directory (from `campaign --save`)")
    alerts.add_argument("--rules", metavar="FILE",
                        help="JSON alert-rules file (default: one rule of "
                             "every kind at documented thresholds)")
    alerts.add_argument("--now", type=float, default=None, metavar="T",
                        help="final evaluation instant in event-stream "
                             "seconds (default: the last event's time)")
    alerts.add_argument("--json", action="store_true",
                        help="emit transitions + firing alerts as JSON")
    alerts.add_argument("--no-write", action="store_true",
                        help="do not (re)write <campaign>/alerts.jsonl")

    diff = sub.add_parser(
        "bench-diff",
        help="gate a fresh BENCH_*.json report against a committed baseline "
             "(per-metric tolerance bands; non-zero exit on regression)")
    diff.add_argument("report", help="the fresh report (e.g. from bench-* -o)")
    diff.add_argument("baseline",
                      help="the committed baseline (benchmarks/reports/...)")
    diff.add_argument("--tolerance", action="append", default=[],
                      metavar="METRIC=REL_TOL",
                      help="override one gated metric's relative tolerance "
                           "(e.g. --tolerance speedup=0.8); repeatable")
    diff.add_argument("--json", action="store_true",
                      help="emit the gate result (rows + attribution) as "
                           "JSON instead of the table")

    profile = sub.add_parser(
        "profile",
        help="render the op-level profile recorded by a run "
             "(set REPRO_PROFILE=sampled|full when running)")
    profile.add_argument("path",
                         help="a result_*.txt, a submission directory, or a "
                              "campaign directory (profiles merge)")
    profile.add_argument("--json", action="store_true",
                         help="emit the (merged) op-profile payload as JSON")

    analyze = sub.add_parser(
        "analyze",
        help="trace-analysis engine: critical path, comms/compute overlap, "
             "top spans and gaps — over a Chrome trace file or a campaign "
             "directory's event streams")
    analyze.add_argument("path",
                         help="a trace_event JSON file (from run/campaign "
                              "--trace) or a campaign directory")
    analyze.add_argument("--top", type=int, default=10,
                         help="rows in the top-spans/gaps tables (default 10)")
    analyze.add_argument("--json", action="store_true",
                         help="emit the analysis payload as JSON")
    analyze.add_argument("--folded", metavar="FILE",
                         help="also write folded stacks (flamegraph.pl "
                              "format) to FILE")

    bprof = sub.add_parser(
        "bench-profile",
        help="measure op-profiler overhead per mode (off/sampled/full) "
             "against a no-telemetry baseline on a conv+linear+SGD step loop")
    bprof.add_argument("--smoke", action="store_true",
                       help="fast CI variant: fewer steps/repeats, and exit "
                            "non-zero if sampled-mode overhead exceeds "
                            "--max-overhead, results diverge, or ops go "
                            "unrecorded")
    bprof.add_argument("--max-overhead", type=float, default=0.05,
                       help="smoke gate on sampled-mode overhead vs the "
                            "no-telemetry baseline (default 0.05)")
    bprof.add_argument("--steps", type=int, default=None,
                       help="training steps per timing sample (default 24; "
                            "8 with --smoke)")
    bprof.add_argument("--repeats", type=int, default=None,
                       help="timing repeats, minimum taken (default 8; 3 "
                            "with --smoke)")
    bprof.add_argument("--sample-every", type=int, default=4,
                       help="sampling window for 'sampled' mode (default 4)")
    bprof.add_argument("-o", "--out", metavar="FILE",
                       default="benchmarks/reports/BENCH_profile.json",
                       help="report path (default %(default)s; '-' to skip "
                            "writing)")

    hp = sub.add_parser("hp-table", help="print the scale->hyperparameters table (§6)")
    hp.add_argument("--chips", type=int, nargs="+", default=[1, 4, 16, 64])

    sub.add_parser("simulate", help="print the Figure 4/5 round-simulation summary")

    bench = sub.add_parser(
        "bench-kernels",
        help="micro-benchmark the framework hot-path kernels against the "
             "naive reference (per-kernel ns/op, arena hit rate, bit-identity)")
    bench.add_argument("--mode", choices=["naive", "reuse", "fused"], default=None,
                       help="kernel mode to benchmark (default: the active "
                            "REPRO_KERNEL_MODE, normally 'fused')")
    bench.add_argument("--smoke", action="store_true",
                       help="fast CI variant: fewer repeats, and exit non-zero "
                            "if any kernel diverges from the reference or the "
                            "steady-state arena hit rate is below --min-hit-rate")
    bench.add_argument("--min-hit-rate", type=float, default=0.9,
                       help="smoke gate on the steady-state conv-loop arena "
                            "hit rate (default 0.9)")
    bench.add_argument("--repeats", type=int, default=None,
                       help="timing repeats per kernel (default 30; 5 with --smoke)")
    bench.add_argument("-o", "--out", metavar="FILE",
                       default="benchmarks/reports/BENCH_kernels.json",
                       help="report path (default %(default)s; '-' to skip writing)")

    bstep = sub.add_parser(
        "bench-step",
        help="benchmark whole training steps (forward+backward+update) "
             "under the compiled graph executor against fused eager: "
             "per-workload step time, speedup, plan-cache hit rate, and "
             "multi-step bit-identity")
    bstep.add_argument("--mode", choices=["reuse", "fused", "compiled"],
                       default=None,
                       help="kernel mode to benchmark against the fused "
                            "baseline (default 'compiled')")
    bstep.add_argument("--smoke", action="store_true",
                       help="fast CI variant: fewer repeats/steps, and exit "
                            "non-zero if any workload diverges from fused "
                            "eager, a fixed-shape step falls back to eager, "
                            "the plan cache misses after first sighting, or "
                            "the best speedup is below --min-speedup")
    bstep.add_argument("--min-speedup", type=float, default=1.15,
                       help="smoke gate on the best whole-step speedup over "
                            "fused eager (default 1.15; 0 disables)")
    bstep.add_argument("--repeats", type=int, default=None,
                       help="timing repeats per workload (default 40; 8 with "
                            "--smoke)")
    bstep.add_argument("--identity-steps", type=int, default=None,
                       help="optimizer steps in the lockstep bit-identity "
                            "horizon (default 6; 4 with --smoke)")
    bstep.add_argument("-o", "--out", metavar="FILE",
                       default="benchmarks/reports/BENCH_step.json",
                       help="report path (default %(default)s; '-' to skip writing)")

    comms = sub.add_parser(
        "bench-comms",
        help="benchmark the sharded data-parallel engine: workers x "
             "reduction algorithm x bucket size vs the in-process baseline, "
             "with bit-identity checked on every configuration")
    comms.add_argument("--smoke", action="store_true",
                       help="fast CI variant: 2 workers, fewer steps; exit "
                            "non-zero on any divergence from the in-process "
                            "engine, or (on multi-core hosts) on 2-worker "
                            "speedup below --min-speedup")
    comms.add_argument("--workers", type=int, nargs="+", default=None,
                       help="worker counts to sweep (default 2 3 4; 2 with --smoke)")
    comms.add_argument("--algorithms", nargs="+", default=None,
                       choices=["flat", "ring", "tree"],
                       help="reduction algorithms to sweep (default: all)")
    comms.add_argument("--bucket-bytes", type=int, nargs="+", default=None,
                       help="bucket capacities to sweep (default 32KiB+256KiB; "
                            "256KiB with --smoke)")
    comms.add_argument("--backend", choices=["process", "inline"], default=None,
                       help="engine backend (default: process where fork is "
                            "available, else inline)")
    comms.add_argument("--steps", type=int, default=None,
                       help="timed steps per configuration (default 8; 2 with "
                            "--smoke)")
    comms.add_argument("--min-speedup", type=float, default=1.0,
                       help="smoke gate on best 2-worker speedup; only "
                            "enforced when the host has >= 2 usable cores "
                            "(default 1.0)")
    comms.add_argument("-o", "--out", metavar="FILE",
                       default="benchmarks/reports/BENCH_comms.json",
                       help="report path (default %(default)s; '-' to skip writing)")

    loadgen = sub.add_parser(
        "loadgen",
        help="serve trained models under generated query streams (MLPerf "
             "Inference scenarios): per-scenario latency percentiles, "
             "constraint verdicts, and max sustainable QPS by binary search")
    loadgen.add_argument("--benchmark", action="append", default=[],
                         metavar="NAME",
                         help="benchmark to serve (repeatable; --smoke "
                              "defaults to image_classification + "
                              "recommendation)")
    loadgen.add_argument("--scenario", default="all",
                         choices=["single_stream", "server", "offline", "all"],
                         help="which scenario to run (default: all three)")
    loadgen.add_argument("--artifact", action="append", default=[],
                         metavar="FILE",
                         help="saved result_*.txt to serve, matched to "
                              "--benchmark in order; a short training run is "
                              "executed and saved when omitted")
    loadgen.add_argument("--queries", type=int, default=None,
                         help="queries per scenario (default 128; 48 with "
                              "--smoke)")
    loadgen.add_argument("--warmup", type=int, default=None,
                         help="warmup queries discarded from the measured "
                              "window (default: queries // 16)")
    loadgen.add_argument("--target-qps", type=float, default=100.0,
                         help="server scenario Poisson arrival rate "
                              "(default 100)")
    loadgen.add_argument("--latency-bound", type=float, default=None,
                         metavar="SECONDS",
                         help="latency bound for the percentile constraints "
                              "(default 0.1s; 0.025s with --smoke, tight "
                              "enough that the max-QPS search meets a real "
                              "queueing limit)")
    loadgen.add_argument("--timing", choices=["wall", "virtual"], default=None,
                         help="per-query service-time source: 'wall' measures "
                              "the monotonic clock, 'virtual' draws from the "
                              "seeded service model so every statistic is "
                              "bit-identical across reruns and machines "
                              "(default wall; virtual with --smoke)")
    loadgen.add_argument("--seed", type=int, default=0,
                         help="query-stream seed (default 0)")
    loadgen.add_argument("--workers", type=int, default=1,
                         help="serving worker processes (>1 forks a "
                              "shared-memory serving pool; requires fork)")
    loadgen.add_argument("--train-epochs", type=int, default=1,
                         help="epoch cap for the inline training run when no "
                              "--artifact is given (default 1)")
    loadgen.add_argument("--no-rerun", dest="rerun", action="store_false",
                         help="skip the same-seed determinism rerun")
    loadgen.add_argument("--save", metavar="DIR",
                         help="write the serving event stream (and any "
                              "inline-trained artifacts) under DIR; `repro "
                              "analyze DIR` then renders the serving run")
    loadgen.add_argument("--smoke", action="store_true",
                         help="fast CI variant: two workloads, virtual "
                              "timing, small query counts; exit non-zero on "
                              "any invalid scenario, nondeterministic rerun, "
                              "or failed QPS search")
    loadgen.add_argument("-o", "--out", metavar="FILE",
                         default="benchmarks/reports/BENCH_loadgen.json",
                         help="report path (default %(default)s; '-' to skip "
                              "writing)")
    return parser


def _parse_overrides(pairs: list[str]) -> dict:
    overrides = {}
    for pair in pairs:
        key, sep, raw = pair.partition("=")
        if not sep:
            raise SystemExit(f"bad --override {pair!r}: expected KEY=VALUE")
        try:
            overrides[key] = json.loads(raw)
        except json.JSONDecodeError:
            overrides[key] = raw  # bare strings are allowed
    return overrides


def _cmd_table1(args, out) -> int:
    from .suite import table1, table1_payload

    if getattr(args, "json", False):
        print(json.dumps(table1_payload(), indent=2, sort_keys=True), file=out)
    else:
        print(table1(), file=out)
    return 0


def _write_trace_file(path: str, trace_events: list, out, note: str = "") -> None:
    from pathlib import Path

    Path(path).write_text(json.dumps(
        {"traceEvents": trace_events, "displayTimeUnit": "ms"}, sort_keys=True))
    print(f"trace written to {path} ({len(trace_events)} events){note}; "
          f"open in chrome://tracing or https://ui.perfetto.dev", file=out)


def _cmd_run(args, out) -> int:
    from .core import (
        BenchmarkRunner,
        Category,
        Division,
        RunFailure,
        Submission,
        SystemDescription,
        SystemType,
        save_submission,
        score_runs,
    )
    from .suite import create_benchmark

    from .telemetry import Telemetry

    benchmark = create_benchmark(args.benchmark)
    overrides = _parse_overrides(args.override) or None
    runner = BenchmarkRunner()
    runs = []
    trace_events = []
    for seed in range(args.seeds):
        # One telemetry session per seed (pid=seed) so a multi-run trace
        # file keeps its runs on separate process rows in the viewer.
        # Saved runs also collect telemetry: the metrics snapshot rides
        # in the artifact header, where `repro stats` reads it back.
        want_telemetry = args.trace or args.save
        telemetry = Telemetry(clock=runner.clock, pid=seed) if want_telemetry else None
        try:
            result = runner.run(benchmark, seed=seed,
                                hyperparameter_overrides=overrides,
                                telemetry=telemetry)
        except RunFailure as failure:
            # A crashed run is a failed session, not a CLI crash — and
            # never a success: summarize it and exit non-zero.  The
            # partial trace still gets written below: a failed run is
            # exactly when the trace is wanted (the runner aborted the
            # open spans, so they export).
            print(failure.summary(), file=out)
            if failure.telemetry is not None:
                trace_events.extend(failure.telemetry.trace_events)
            elif telemetry is not None:
                trace_events.extend(telemetry.tracer.chrome_events())
            if args.trace:
                _write_trace_file(args.trace, trace_events, out,
                                  note=" (partial: run failed)")
            return 1
        status = "reached" if result.reached_target else "FAILED"
        print(f"seed {seed}: {status} quality={result.quality:.4f} "
              f"epochs={result.epochs} ttt={result.time_to_train_s:.3f}s", file=out)
        if result.breakdown is not None:
            b = result.breakdown
            print(f"  breakdown: init={b.init_seconds:.3f}s "
                  f"create={b.model_creation_seconds:.3f}s "
                  f"(excluded {b.excluded_model_creation_seconds:.3f}s) "
                  f"run={b.run_seconds:.3f}s", file=out)
        if telemetry is not None:
            trace_events.extend(telemetry.tracer.chrome_events())
        runs.append(result)

    if args.trace:
        _write_trace_file(args.trace, trace_events, out)

    exit_code = 0 if all(r.reached_target for r in runs) else 1
    if args.score:
        if len(runs) < 3:
            print("scoring requires at least 3 runs (--seeds 3+)", file=out)
            return 2
        score = score_runs(runs)
        print(f"scored time-to-train (olympic mean): {score.time_to_train_s:.3f}s",
              file=out)

    if args.save:
        system = SystemDescription(
            submitter=args.submitter,
            system_name=f"{args.submitter}-system",
            system_type=SystemType.ON_PREMISE,
            num_nodes=1,
            processors_per_node=1,
            processor_type="host-cpu",
            accelerators_per_node=0,
            accelerator_type="none",
            host_memory_gb=8.0,
            interconnect="none",
        )
        submission = Submission(system, Division.CLOSED, Category.RESEARCH)
        submission.add_runs(benchmark.spec.name, runs)
        base = save_submission(submission, args.save)
        print(f"artifacts written to {base}", file=out)
    return exit_code


def _cmd_campaign(args, out) -> int:
    from pathlib import Path

    from .core import render_campaign_summary, save_submission
    from .exec import (
        CampaignSpec,
        MultiprocessExecutor,
        RetryPolicy,
        SequentialExecutor,
        default_system,
        run_campaign,
    )
    from .suite import REGISTRY

    if args.jobs < 1:
        print("--jobs must be >= 1", file=out)
        return 2
    if args.resume and args.save and args.resume != args.save:
        print("--resume DIR already implies --save DIR; pass one of them", file=out)
        return 2

    benchmarks = tuple(args.benchmarks) if args.benchmarks else tuple(REGISTRY)
    unknown = [b for b in benchmarks if b not in REGISTRY]
    if unknown:
        print(f"unknown benchmark(s): {unknown}; see `repro table1`", file=out)
        return 2

    spec = CampaignSpec(
        benchmarks=benchmarks,
        seeds=args.seeds,
        overrides=_parse_overrides(args.override) or None,
        timeout_s=args.timeout,
    )
    if args.processes_per_job < 1:
        print("--processes-per-job must be >= 1", file=out)
        return 2
    executor = (SequentialExecutor() if args.jobs == 1
                else MultiprocessExecutor(
                    args.jobs, processes_per_job=args.processes_per_job))
    campaign_dir = args.resume or args.save

    outcome = run_campaign(
        spec,
        executor=executor,
        journal_dir=campaign_dir,
        resume=bool(args.resume),
        policy=RetryPolicy(max_retries=args.retries, backoff_base_s=args.backoff),
        system=default_system(args.submitter),
    )

    for warning in outcome.plan.warnings:
        print(f"warning: {warning}", file=out)
    print(render_campaign_summary(outcome.summary, outcome.scores,
                                  outcome.unscored), file=out)

    # The same per-job table `repro monitor` renders, fed from the
    # in-memory journal instead of files — one rendering path for both.
    from dataclasses import asdict

    from .telemetry import build_view, render_job_table

    view = build_view(
        job_records={key: asdict(rec) for key, rec in outcome.journal.jobs.items()},
        planned_cells=[job.cell for job in outcome.plan.jobs],
        now_s=0.0,
    )
    print(file=out)
    print(render_job_table(view.jobs), file=out)

    if campaign_dir and outcome.submission is not None:
        base = save_submission(outcome.submission, campaign_dir)
        print(f"artifacts written to {base}", file=out)
    if campaign_dir:
        print(f"journal at {outcome.journal.path}", file=out)
    if args.trace and outcome.telemetry is not None:
        Path(args.trace).write_text(json.dumps(
            outcome.telemetry.to_chrome_trace(), sort_keys=True))
        print(f"merged trace written to {args.trace} "
              f"({len(outcome.telemetry.trace_events)} events)", file=out)
    if args.bench:
        Path(args.bench).write_text(
            json.dumps(outcome.bench_payload(), indent=2, sort_keys=True) + "\n")
        print(f"campaign bench stats written to {args.bench}", file=out)
    return 0 if outcome.ok else 1


def _cmd_review(args, out) -> int:
    from .core import review_directory
    from .suite import REGISTRY, create_benchmark

    specs = {name: create_benchmark(name).spec for name in REGISTRY}
    report = review_directory(args.submission_dir, specs)
    print(report, file=out)
    return 0 if report.compliant else 1


def _cmd_report(args, out) -> int:
    from .core import build_report, load_submission

    submissions = [load_submission(d) for d in args.submission_dirs]
    print(build_report(submissions).render(), file=out)
    return 0


def _cmd_trace(args, out) -> int:
    from pathlib import Path

    from .core import parse_log_lines
    from .telemetry import trace_from_log_events

    path = Path(args.log_file)
    if not path.is_file():
        print(f"no such log file: {path}", file=out)
        return 1
    events = parse_log_lines(path.read_text())
    if not events:
        print(f"no :::MLLOG events found in {path}", file=out)
        return 1
    doc = trace_from_log_events(events)
    out_path = Path(args.out) if args.out else path.with_suffix(path.suffix + ".trace.json")
    out_path.write_text(json.dumps(doc, sort_keys=True))
    print(f"trace written to {out_path} ({len(doc['traceEvents'])} events); "
          f"open in chrome://tracing or https://ui.perfetto.dev", file=out)
    return 0


def _cmd_stats(args, out) -> int:
    from .core import build_phase_table, load_submission, render_phase_table

    runs_by_benchmark: dict[str, list] = {}
    for directory in args.submission_dirs:
        try:
            submission = load_submission(directory)
        except FileNotFoundError as exc:
            print(f"cannot load submission {directory}: {exc}", file=out)
            return 1
        for benchmark, runs in submission.runs.items():
            runs_by_benchmark.setdefault(benchmark, []).extend(runs)
    rows = build_phase_table(runs_by_benchmark)
    if not rows:
        print("no runs found in the given submissions", file=out)
        return 1
    print(render_phase_table(rows), file=out)
    if args.series:
        from .telemetry import render_series_table

        print(file=out)
        print(render_series_table(runs_by_benchmark), file=out)
    return 0


def _cmd_monitor(args, out) -> int:
    from .telemetry import render_monitor_view
    from .telemetry.monitor import (DEFAULT_STALL_AFTER_S, CampaignTailer,
                                    campaign_dir_problem)

    problem = campaign_dir_problem(args.campaign_dir)
    if problem is not None:
        print(f"monitor: {problem}", file=out)
        return 1
    stall_after = (DEFAULT_STALL_AFTER_S if args.stall_after is None
                   else args.stall_after)
    # A tailer instead of load_monitor_view so --watch re-reads nothing:
    # each refresh consumes only bytes appended since the previous one.
    tailer = CampaignTailer(args.campaign_dir, stall_after_s=stall_after)

    def refresh():
        view = tailer.refresh()
        print(render_monitor_view(view, recent_events=args.events), file=out)
        return view

    view = refresh()
    if args.watch:
        import time as _time

        while not view.settled:
            _time.sleep(args.watch)
            print(file=out)
            view = refresh()
    return 0 if not view.stalled_jobs else 1


def _cmd_alerts(args, out) -> int:
    from pathlib import Path

    from .telemetry.alerts import (default_rules, load_rules_file,
                                   render_alert_table, replay_alerts)
    from .telemetry.events import EventLog, merge_event_streams
    from .telemetry.monitor import campaign_dir_problem
    from .telemetry.serve import ALERTS_LOG_NAME

    campaign_dir = Path(args.campaign_dir)
    problem = campaign_dir_problem(campaign_dir)
    if problem is not None:
        print(f"alerts: {problem}", file=out)
        return 1
    try:
        rules = (load_rules_file(args.rules) if args.rules
                 else default_rules())
    except (OSError, ValueError) as exc:
        print(f"alerts: {exc}", file=out)
        return 2

    events_dir = campaign_dir / "events"
    streams = sorted(p for p in (events_dir.glob("*.jsonl")
                                 if events_dir.is_dir() else [])
                     if p.name != ALERTS_LOG_NAME)
    events = merge_event_streams(streams)
    engine, transitions = replay_alerts(events, rules, now_s=args.now)

    if not args.no_write:
        # mode="w": the file is a pure function of the event streams (and
        # rules), so a re-run reproduces it byte for byte.
        with EventLog(campaign_dir / ALERTS_LOG_NAME, mode="w") as log:
            for transition in transitions:
                log.write(transition)

    active = engine.active()
    if args.json:
        print(json.dumps({
            "transitions": [{"event": t.name, "time_s": t.time_s, **t.args}
                            for t in transitions],
            "firing": [a.to_payload() for a in active],
        }, indent=2, sort_keys=True), file=out)
    else:
        print(f"{len(events)} event(s) from {len(streams)} stream(s), "
              f"{len(transitions)} alert transition(s)", file=out)
        print(render_alert_table(transitions, active), file=out)
        if not args.no_write:
            print(f"alert log written to {campaign_dir / ALERTS_LOG_NAME}",
                  file=out)
    return 1 if active else 0


def _cmd_serve_metrics(args, out) -> int:
    from .telemetry.alerts import load_rules_file
    from .telemetry.monitor import DEFAULT_STALL_AFTER_S
    from .telemetry.serve import ObservabilityServer, discover_campaign_dirs

    try:
        rules = load_rules_file(args.rules) if args.rules else None
    except (OSError, ValueError) as exc:
        print(f"serve-metrics: {exc}", file=out)
        return 2
    found = discover_campaign_dirs(args.root)
    if not found:
        print(f"serve-metrics: no campaigns under {args.root} yet — "
              f"serving anyway, will pick them up as they appear", file=out)
    server = ObservabilityServer(
        args.root, host=args.host, port=args.port, rules=rules,
        stall_after_s=(DEFAULT_STALL_AFTER_S if args.stall_after is None
                       else args.stall_after),
        min_refresh_s=args.refresh,
        write_alerts=not args.no_alerts_log,
    ).bind()
    print(f"observability server on {server.url} "
          f"({len(found)} campaign(s))", file=out)
    print(f"  metrics:   {server.url}/metrics", file=out)
    print(f"  api:       {server.url}/api/campaigns  /api/alerts", file=out)
    print(f"  sse:       {server.url}/events", file=out)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("interrupted; shutting down", file=out)
        server.close()
    return 0


def _cmd_bench_diff(args, out) -> int:
    from .telemetry import compare_reports, load_report

    overrides = {}
    for pair in args.tolerance:
        metric, sep, raw = pair.partition("=")
        if not sep:
            print(f"bad --tolerance {pair!r}: expected METRIC=REL_TOL", file=out)
            return 2
        try:
            overrides[metric] = float(raw)
        except ValueError:
            print(f"bad --tolerance {pair!r}: {raw!r} is not a number", file=out)
            return 2
    try:
        current = load_report(args.report)
        baseline = load_report(args.baseline)
        report = compare_reports(current, baseline,
                                 tolerance_overrides=overrides)
    except (OSError, ValueError) as exc:
        print(f"bench-diff: {exc}", file=out)
        return 2
    if args.json:
        print(json.dumps(report.to_payload(), indent=2, sort_keys=True), file=out)
    else:
        print(report.render(), file=out)
    return 0 if report.ok else 1


def _result_file_op_profile(path) -> dict:
    """The op_profile header field of one result_*.txt (or {})."""
    first = path.read_text().partition("\n")[0]
    if not first.startswith("# repro-run "):
        return {}
    try:
        header = json.loads(first[len("# repro-run "):])
    except json.JSONDecodeError:
        return {}
    return header.get("op_profile") or {}


def _cmd_profile(args, out) -> int:
    from pathlib import Path

    from .telemetry import merge_op_profiles, render_op_profile

    path = Path(args.path)
    if path.is_file():
        sources = [path]
    elif path.is_dir():
        # Works on a submission directory, a campaign directory (per-job
        # results live under jobs/), or anything containing result files.
        sources = sorted(path.rglob("result_*.txt"))
    else:
        print(f"no such file or directory: {path}", file=out)
        return 2
    profiles = [p for p in (_result_file_op_profile(f) for f in sources) if p]
    if not profiles:
        print(f"no op profiles found under {path} — run with "
              "REPRO_PROFILE=sampled (or full) to record one", file=out)
        return 1
    merged = merge_op_profiles(profiles)
    if args.json:
        print(json.dumps(merged, indent=2, sort_keys=True), file=out)
    else:
        print(f"{len(profiles)} profiled run(s) under {path}", file=out)
        print(render_op_profile(merged), file=out)
    return 0


def _cmd_analyze(args, out) -> int:
    from pathlib import Path

    from .telemetry import analyze_campaign_dir, analyze_trace

    path = Path(args.path)
    try:
        if path.is_dir():
            analysis = analyze_campaign_dir(path, top=args.top)
        elif path.is_file():
            doc = json.loads(path.read_text())
            analysis = analyze_trace(doc, top=args.top)
        else:
            print(f"no such file or directory: {path}", file=out)
            return 2
    except (ValueError, FileNotFoundError, json.JSONDecodeError) as exc:
        print(f"analyze: {exc}", file=out)
        return 2
    if analysis.span_count == 0:
        print(f"no spans found in {path}", file=out)
        return 1
    if args.json:
        print(json.dumps(analysis.to_payload(), indent=2, sort_keys=True),
              file=out)
    else:
        print(analysis.render(), file=out)
    if args.folded:
        Path(args.folded).write_text("\n".join(analysis.folded) + "\n")
        print(f"folded stacks written to {args.folded} "
              f"({len(analysis.folded)} line(s))", file=out)
    return 0


def _cmd_bench_profile(args, out) -> int:
    from pathlib import Path

    from .framework.microbench import bench_profile, gate_profile_failures
    from .telemetry import render_op_profile

    payload = bench_profile(steps=args.steps, repeats=args.repeats,
                            sample_every=args.sample_every, smoke=args.smoke)
    checks = payload["checks"]
    base_ms = payload["timings_ns"]["baseline"] / 1e6
    print(f"baseline (no telemetry): {base_ms:.2f}ms for "
          f"{payload['steps']} step(s), min of {payload['repeats']}", file=out)
    for mode in ("off", "sampled", "full"):
        print(f"  {mode:<8} {payload['timings_ns'][mode] / 1e6:>9.2f}ms  "
              f"overhead {checks[f'{mode}_overhead']:>6.1%}  "
              f"[{'ok' if checks['bit_identical_by_mode'][mode] else 'DIVERGED'}]",
              file=out)
    print(f"  ops recorded (full mode): {checks['ops_recorded']}", file=out)
    print(render_op_profile(payload["op_profile"]), file=out)

    if args.out and args.out != "-":
        path = Path(args.out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"report written to {path}", file=out)

    if args.smoke:
        failures = gate_profile_failures(
            payload, max_sampled_overhead=args.max_overhead)
        for failure in failures:
            print(f"GATE FAILED: {failure}", file=out)
        return 1 if failures else 0
    return 0


def _cmd_hp_table(args, out) -> int:
    from .core.hp_table import recommendation_table, render_table
    from .suite import all_specs

    rows = recommendation_table(all_specs(), chip_counts=tuple(args.chips),
                                precisions=("float32",))
    print(render_table(rows), file=out)
    return 0


def _cmd_simulate(_args, out) -> int:
    from .systems import figure4_speedups, figure5_scale_growth

    speedups = figure4_speedups(16)
    print("Figure 4 — fastest 16-chip entry speedup v0.5 -> v0.6:", file=out)
    for name, s in speedups.items():
        print(f"  {name:<26} {s:.2f}x", file=out)
    print(f"  average: {np.mean(list(speedups.values())):.2f}x", file=out)
    print(file=out)
    print("Figure 5 — chips in the fastest overall entry:", file=out)
    ratios = []
    for name, (v05, v06) in figure5_scale_growth().items():
        ratios.append(v06.num_chips / v05.num_chips)
        print(f"  {name:<26} {v05.num_chips} -> {v06.num_chips} "
              f"({ratios[-1]:.1f}x)", file=out)
    print(f"  average: {np.mean(ratios):.1f}x", file=out)
    return 0


def _cmd_bench_kernels(args, out) -> int:
    from pathlib import Path

    from .framework.microbench import bench_kernels, gate_failures

    payload = bench_kernels(mode=args.mode, smoke=args.smoke,
                            repeats=args.repeats)
    print(f"kernel mode: {payload['kernel_mode']} "
          f"(repeats={payload['repeats']}, warmup={payload['warmup']})", file=out)
    for name, entry in payload["kernels"].items():
        flag = "ok" if entry["bit_identical"] else "DIVERGED"
        print(f"  {name:<20} {entry['naive_ns_per_op'] / 1e3:>10.1f}us naive  "
              f"{entry['ns_per_op'] / 1e3:>10.1f}us {payload['kernel_mode']}  "
              f"{entry['speedup']:>5.2f}x  [{flag}]", file=out)
    stats = payload["arena"]
    print(f"  arena: hit_rate={stats['hit_rate']:.3f} "
          f"steady_state_bytes={stats['steady_state_bytes_allocated']} "
          f"pooled_bytes={stats['pooled_bytes']}", file=out)

    if args.out and args.out != "-":
        path = Path(args.out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"report written to {path}", file=out)

    if args.smoke:
        failures = gate_failures(payload, min_hit_rate=args.min_hit_rate)
        for failure in failures:
            print(f"GATE FAILED: {failure}", file=out)
        return 1 if failures else 0
    return 0


def _cmd_bench_step(args, out) -> int:
    from pathlib import Path

    from .framework.microbench import bench_step, gate_step_failures

    payload = bench_step(mode=args.mode, smoke=args.smoke,
                         repeats=args.repeats,
                         identity_steps=args.identity_steps)
    print(f"kernel mode: {payload['kernel_mode']} vs fused eager "
          f"(repeats={payload['repeats']}, warmup={payload['warmup']}, "
          f"identity_steps={payload['identity_steps']})", file=out)
    for name, entry in payload["workloads"].items():
        flag = "ok" if entry["bit_identical"] else "DIVERGED"
        ex = entry["executor"]
        print(f"  {name:<20} {entry['fused_ns_per_step'] / 1e3:>9.1f}us fused  "
              f"{entry['ns_per_step'] / 1e3:>9.1f}us {payload['kernel_mode']}  "
              f"{entry['speedup']:>5.2f}x  hit_rate={entry['hit_rate_after_first']:.2f}  "
              f"chains={ex['fused_chains']}  "
              f"peak={ex['peak_grad_bytes'] // 1024}KiB  [{flag}]", file=out)
    checks = payload["checks"]
    print(f"  best: {checks['best_speedup']:.2f}x "
          f"({checks['best_speedup_workload']})  "
          f"fallbacks={checks['fallbacks']}", file=out)

    if args.out and args.out != "-":
        path = Path(args.out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"report written to {path}", file=out)

    if args.smoke:
        min_speedup = args.min_speedup if args.min_speedup > 0 else None
        failures = gate_step_failures(payload, min_speedup=min_speedup)
        for failure in failures:
            print(f"GATE FAILED: {failure}", file=out)
        return 1 if failures else 0
    return 0


def _cmd_bench_comms(args, out) -> int:
    from pathlib import Path

    from .comms.bench import bench_comms, gate_failures

    payload = bench_comms(smoke=args.smoke, workers=args.workers,
                          algorithms=args.algorithms,
                          bucket_sizes=args.bucket_bytes,
                          steps=args.steps, backend=args.backend)
    print(f"backend: {payload['backend']}  cpu_count: {payload['cpu_count']}  "
          f"workload: dims={payload['workload']['dims']} "
          f"batch={payload['workload']['batch']}", file=out)
    for entry in payload["results"]:
        flag = "ok" if entry["bit_identical_vs_sync"] else "DIVERGED"
        print(f"  W={entry['workers']} {entry['algorithm']:<5} "
              f"bucket={entry['bucket_bytes'] // 1024:>4}KiB  "
              f"{entry['baseline_step_seconds'] * 1e3:>8.2f}ms sync  "
              f"{entry['step_seconds'] * 1e3:>8.2f}ms sharded  "
              f"{entry['speedup']:>5.2f}x  [{flag}]", file=out)
    best = payload["checks"]["best_speedup_by_workers"]
    summary = "  ".join(f"W={w}: {s:.2f}x" for w, s in sorted(best.items()))
    print(f"  best speedup by workers: {summary}", file=out)

    if args.out and args.out != "-":
        path = Path(args.out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"report written to {path}", file=out)

    if args.smoke:
        failures = gate_failures(payload, min_speedup=args.min_speedup,
                                 speedup_workers=2)
        for failure in failures:
            print(f"GATE FAILED: {failure}", file=out)
        return 1 if failures else 0
    return 0


def _cmd_loadgen(args, out) -> int:
    import tempfile
    from pathlib import Path

    from .loadgen import (
        SCENARIO_NAMES,
        build_loadgen_payload,
        default_scenarios,
        find_max_qps,
        gate_failures,
        load_sut,
        render_loadgen_report,
        run_scenario,
        train_and_save,
    )
    from .suite import REGISTRY
    from .telemetry import EventLog, Telemetry

    benchmarks = list(args.benchmark) or (
        ["image_classification", "recommendation"] if args.smoke else [])
    if not benchmarks:
        print("pass --benchmark NAME (repeatable), or --smoke for the "
              "default two-workload set", file=out)
        return 2
    unknown = [b for b in benchmarks if b not in REGISTRY]
    if unknown:
        print(f"unknown benchmark(s): {unknown}; see `repro table1`", file=out)
        return 2
    if len(args.artifact) > len(benchmarks):
        print("more --artifact paths than --benchmark names", file=out)
        return 2

    timing = args.timing or ("virtual" if args.smoke else "wall")
    queries = args.queries or (48 if args.smoke else 128)
    warmup = args.warmup if args.warmup is not None else max(queries // 16, 1)
    latency_bound = (args.latency_bound if args.latency_bound is not None
                     else (0.025 if args.smoke else 0.1))
    selected = (SCENARIO_NAMES if args.scenario == "all"
                else (args.scenario,))

    telemetry = Telemetry()
    log = None
    if args.save:
        log = EventLog(Path(args.save) / "events" / "loadgen.jsonl", mode="w")
        telemetry.events.subscribe(log.write)

    tmp = tempfile.TemporaryDirectory(prefix="repro-loadgen-")
    artifact_dir = (Path(args.save) / "artifacts" if args.save
                    else Path(tmp.name))
    try:
        with telemetry.activate():
            artifacts: dict[str, Path] = {}
            for i, name in enumerate(benchmarks):
                if i < len(args.artifact):
                    artifacts[name] = Path(args.artifact[i])
                else:
                    path = artifact_dir / f"result_{name}.txt"
                    print(f"{name}: no --artifact; training "
                          f"{args.train_epochs} epoch(s) -> {path}", file=out)
                    train_and_save(name, path, seed=args.seed,
                                   max_epochs=args.train_epochs)
                    artifacts[name] = path

            results: dict[str, list] = {}
            reruns: dict[str, list] = {}
            passes = ((results, reruns) if args.rerun else (results,))
            for name in benchmarks:
                specs = default_scenarios(
                    query_count=queries, warmup_queries=warmup,
                    target_qps=args.target_qps,
                    latency_bound_s=latency_bound)
                for bucket in passes:
                    # Each pass rebuilds the SUT from the artifact — the
                    # determinism check covers the full load-and-serve path.
                    sut = load_sut(artifacts[name], workers=args.workers)
                    try:
                        bench_results = []
                        for scenario in selected:
                            res = run_scenario(sut, specs[scenario],
                                               seed=args.seed, timing=timing)
                            if scenario == "server":
                                res.max_qps = find_max_qps(
                                    sut, specs["server"], seed=args.seed,
                                    timing=timing)
                            bench_results.append(res)
                        bucket[name] = bench_results
                    finally:
                        sut.close()
    finally:
        if log is not None:
            log.close()
        tmp.cleanup()

    payload = build_loadgen_payload(results, reruns if args.rerun else None,
                                    timing=timing, seed=args.seed)
    print(render_loadgen_report(payload), file=out)

    if args.out and args.out != "-":
        path = Path(args.out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"report written to {path}", file=out)
    if args.save:
        print(f"serving events written under {args.save} "
              f"(render with `repro analyze {args.save}`)", file=out)

    if args.smoke:
        failures = gate_failures(payload)
        for failure in failures:
            print(f"GATE FAILED: {failure}", file=out)
        return 1 if failures else 0
    return 0 if payload["checks"]["all_valid"] else 1


_COMMANDS = {
    "table1": _cmd_table1,
    "run": _cmd_run,
    "campaign": _cmd_campaign,
    "review": _cmd_review,
    "report": _cmd_report,
    "trace": _cmd_trace,
    "stats": _cmd_stats,
    "monitor": _cmd_monitor,
    "alerts": _cmd_alerts,
    "serve-metrics": _cmd_serve_metrics,
    "bench-diff": _cmd_bench_diff,
    "profile": _cmd_profile,
    "analyze": _cmd_analyze,
    "hp-table": _cmd_hp_table,
    "simulate": _cmd_simulate,
    "bench-kernels": _cmd_bench_kernels,
    "bench-step": _cmd_bench_step,
    "bench-comms": _cmd_bench_comms,
    "bench-profile": _cmd_bench_profile,
    "loadgen": _cmd_loadgen,
}


def main(argv: list[str] | None = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args, out)


if __name__ == "__main__":  # pragma: no cover
    try:
        raise SystemExit(main())
    except BrokenPipeError:
        # Reader (e.g. `| head`) closed the pipe; not an error.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        raise SystemExit(0)
