"""Command-line interface: ``python -m repro <command>``.

Commands mirror how the MLPerf artifacts are used in practice:

- ``table1`` — print the benchmark suite;
- ``run`` — execute timed runs of a benchmark (optionally scoring them and
  saving submission artifacts);
- ``review`` — compliance-review a saved submission directory;
- ``report`` — build the published per-benchmark results table from saved
  submissions;
- ``hp-table`` — print the §6 scale → hyperparameters recommendation table;
- ``simulate`` — print the Figure 4/5 round-simulation summaries.
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MLPerf Training Benchmark reproduction harness",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="print the benchmark suite (Table 1)")

    run = sub.add_parser("run", help="run timed training sessions of a benchmark")
    run.add_argument("benchmark", help="benchmark name (see `repro table1`)")
    run.add_argument("--seeds", type=int, default=1,
                     help="number of seeded runs (default 1; use the spec's "
                          "required count for a scoreable set)")
    run.add_argument("--score", action="store_true",
                     help="apply the §3.2.2 scoring rule (needs >= 3 runs)")
    run.add_argument("--override", action="append", default=[],
                     metavar="KEY=VALUE", help="hyperparameter override (JSON value)")
    run.add_argument("--save", metavar="DIR",
                     help="save submission artifacts under DIR")
    run.add_argument("--submitter", default="cli-user",
                     help="submitter name for saved artifacts")

    review = sub.add_parser("review", help="compliance-review a saved submission")
    review.add_argument("submission_dir", help="submitter directory (from `run --save`)")

    report = sub.add_parser("report", help="render the results table from submissions")
    report.add_argument("submission_dirs", nargs="+", help="submitter directories")

    hp = sub.add_parser("hp-table", help="print the scale->hyperparameters table (§6)")
    hp.add_argument("--chips", type=int, nargs="+", default=[1, 4, 16, 64])

    sub.add_parser("simulate", help="print the Figure 4/5 round-simulation summary")
    return parser


def _parse_overrides(pairs: list[str]) -> dict:
    overrides = {}
    for pair in pairs:
        key, sep, raw = pair.partition("=")
        if not sep:
            raise SystemExit(f"bad --override {pair!r}: expected KEY=VALUE")
        try:
            overrides[key] = json.loads(raw)
        except json.JSONDecodeError:
            overrides[key] = raw  # bare strings are allowed
    return overrides


def _cmd_table1(_args, out) -> int:
    from .suite import table1

    print(table1(), file=out)
    return 0


def _cmd_run(args, out) -> int:
    from .core import (
        BenchmarkRunner,
        Category,
        Division,
        Submission,
        SystemDescription,
        SystemType,
        save_submission,
        score_runs,
    )
    from .suite import create_benchmark

    benchmark = create_benchmark(args.benchmark)
    overrides = _parse_overrides(args.override) or None
    runner = BenchmarkRunner()
    runs = []
    for seed in range(args.seeds):
        result = runner.run(benchmark, seed=seed, hyperparameter_overrides=overrides)
        status = "reached" if result.reached_target else "FAILED"
        print(f"seed {seed}: {status} quality={result.quality:.4f} "
              f"epochs={result.epochs} ttt={result.time_to_train_s:.3f}s", file=out)
        runs.append(result)

    exit_code = 0 if all(r.reached_target for r in runs) else 1
    if args.score:
        if len(runs) < 3:
            print("scoring requires at least 3 runs (--seeds 3+)", file=out)
            return 2
        score = score_runs(runs)
        print(f"scored time-to-train (olympic mean): {score.time_to_train_s:.3f}s",
              file=out)

    if args.save:
        system = SystemDescription(
            submitter=args.submitter,
            system_name=f"{args.submitter}-system",
            system_type=SystemType.ON_PREMISE,
            num_nodes=1,
            processors_per_node=1,
            processor_type="host-cpu",
            accelerators_per_node=0,
            accelerator_type="none",
            host_memory_gb=8.0,
            interconnect="none",
        )
        submission = Submission(system, Division.CLOSED, Category.RESEARCH)
        submission.add_runs(benchmark.spec.name, runs)
        base = save_submission(submission, args.save)
        print(f"artifacts written to {base}", file=out)
    return exit_code


def _cmd_review(args, out) -> int:
    from .core import review_directory
    from .suite import REGISTRY, create_benchmark

    specs = {name: create_benchmark(name).spec for name in REGISTRY}
    report = review_directory(args.submission_dir, specs)
    print(report, file=out)
    return 0 if report.compliant else 1


def _cmd_report(args, out) -> int:
    from .core import build_report, load_submission

    submissions = [load_submission(d) for d in args.submission_dirs]
    print(build_report(submissions).render(), file=out)
    return 0


def _cmd_hp_table(args, out) -> int:
    from .core.hp_table import recommendation_table, render_table
    from .suite import all_specs

    rows = recommendation_table(all_specs(), chip_counts=tuple(args.chips),
                                precisions=("float32",))
    print(render_table(rows), file=out)
    return 0


def _cmd_simulate(_args, out) -> int:
    from .systems import figure4_speedups, figure5_scale_growth

    speedups = figure4_speedups(16)
    print("Figure 4 — fastest 16-chip entry speedup v0.5 -> v0.6:", file=out)
    for name, s in speedups.items():
        print(f"  {name:<26} {s:.2f}x", file=out)
    print(f"  average: {np.mean(list(speedups.values())):.2f}x", file=out)
    print(file=out)
    print("Figure 5 — chips in the fastest overall entry:", file=out)
    ratios = []
    for name, (v05, v06) in figure5_scale_growth().items():
        ratios.append(v06.num_chips / v05.num_chips)
        print(f"  {name:<26} {v05.num_chips} -> {v06.num_chips} "
              f"({ratios[-1]:.1f}x)", file=out)
    print(f"  average: {np.mean(ratios):.1f}x", file=out)
    return 0


_COMMANDS = {
    "table1": _cmd_table1,
    "run": _cmd_run,
    "review": _cmd_review,
    "report": _cmd_report,
    "hp-table": _cmd_hp_table,
    "simulate": _cmd_simulate,
}


def main(argv: list[str] | None = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args, out)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
