"""The campaign journal: durable per-cell progress for resume.

One JSON file (``campaign_journal.json``) under the campaign's artifacts
directory, rewritten atomically after **every** job completion — so a
campaign killed at any instant loses at most the in-flight jobs.  Each
completed cell's full :class:`~repro.core.runner.RunResult` is persisted
alongside as a ``jobs/<benchmark>/seed_<k>.txt`` file in the same
``# repro-run`` format submission artifacts use
(:func:`~repro.core.artifacts.save_run_result`), so a resumed campaign
reloads prior runs with full fidelity and every per-job record stays
auditable with the standard tooling (``repro trace``, log linting).

Cell states:

- ``reached`` — run completed and met the quality target (terminal);
- ``quality_miss`` — run completed below target (terminal: deterministic
  re-execution cannot change it, §3.2.2 treats it as a failed *result*);
- ``fault`` — the run raised; retried up to the cap, then terminal for
  this invocation but **rescheduled on resume** (fresh chance);
- ``timeout`` — exceeded the per-job deadline; terminal for this
  invocation, rescheduled on resume (the user may raise the budget).
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any

from ..core.artifacts import load_run_result, save_run_result
from ..core.runner import RunResult

__all__ = ["JobRecord", "CampaignJournal", "JOURNAL_NAME"]

JOURNAL_NAME = "campaign_journal.json"
JOURNAL_VERSION = 1

# Cell states that resume must not reschedule.
_DONE = frozenset({"reached", "quality_miss"})


@dataclass
class JobRecord:
    """Everything the journal knows about one (benchmark, seed) cell."""

    benchmark: str
    seed: int
    status: str  # reached | quality_miss | fault | timeout
    attempts: int = 1
    run_seed: int | None = None
    quality: float | None = None
    epochs: int | None = None
    time_to_train_s: float | None = None
    error: str | None = None
    backoffs_s: list[float] = field(default_factory=list)
    result_file: str | None = None  # relative to the journal directory

    @property
    def key(self) -> str:
        return f"{self.benchmark}/{self.seed}"

    @property
    def done(self) -> bool:
        return self.status in _DONE


class CampaignJournal:
    """Load/record/persist campaign progress.

    ``directory=None`` keeps the journal in memory only (the default for
    unsaved campaigns); with a directory, every :meth:`record` atomically
    rewrites the JSON file (write-temp-then-rename, so a kill mid-write
    never corrupts the previous state).
    """

    def __init__(self, directory: str | Path | None = None,
                 campaign: dict[str, Any] | None = None):
        self.directory = Path(directory) if directory is not None else None
        self.campaign = campaign or {}
        self.jobs: dict[str, JobRecord] = {}

    # -- persistence ---------------------------------------------------------
    @property
    def path(self) -> Path | None:
        return None if self.directory is None else self.directory / JOURNAL_NAME

    @classmethod
    def load(cls, directory: str | Path) -> "CampaignJournal":
        """Read a journal back; an absent file yields an empty journal."""
        journal = cls(directory)
        path = journal.path
        if not path.is_file():
            return journal
        doc = json.loads(path.read_text())
        if doc.get("version") != JOURNAL_VERSION:
            raise ValueError(
                f"{path}: unsupported journal version {doc.get('version')!r}"
            )
        journal.campaign = doc.get("campaign", {})
        for key, raw in doc.get("jobs", {}).items():
            journal.jobs[key] = JobRecord(**raw)
        return journal

    def flush(self) -> None:
        if self.directory is None:
            return
        self.directory.mkdir(parents=True, exist_ok=True)
        doc = {
            "version": JOURNAL_VERSION,
            "campaign": self.campaign,
            "jobs": {key: asdict(rec) for key, rec in sorted(self.jobs.items())},
        }
        tmp = self.path.with_suffix(".tmp")
        tmp.write_text(json.dumps(doc, indent=2, sort_keys=True))
        os.replace(tmp, self.path)

    # -- recording -----------------------------------------------------------
    def record(self, record: JobRecord, result: RunResult | None = None) -> None:
        """Record one cell's latest state and persist immediately.

        When a :class:`RunResult` is supplied and the journal is on disk,
        the run is written as a ``# repro-run`` file and referenced from
        the record, making the cell resumable with full fidelity.
        """
        if result is not None and self.directory is not None:
            rel = Path("jobs") / record.benchmark / f"seed_{record.seed}.txt"
            save_run_result(self.directory / rel, result)
            record.result_file = str(rel)
        self.jobs[record.key] = record
        self.flush()

    # -- resume queries ------------------------------------------------------
    def completed_cells(self) -> set[tuple[str, int]]:
        """Cells resume must skip (terminal results, reached or missed)."""
        return {(r.benchmark, r.seed) for r in self.jobs.values() if r.done}

    def load_result(self, benchmark: str, seed: int) -> RunResult | None:
        """Reload a completed cell's full run from its result file."""
        record = self.jobs.get(f"{benchmark}/{seed}")
        if record is None or record.result_file is None or self.directory is None:
            return None
        path = self.directory / record.result_file
        if not path.is_file():
            return None
        return load_run_result(benchmark, path)
