"""Campaign planning: expand a spec into the (benchmark, seed) job graph.

A *campaign* is every run a submission needs: for each selected benchmark,
the §3.2.2 rule fixes how many independent seeded runs must exist before
the olympic mean is defined (5 for vision, 10 for everything else — the
``required_runs`` column of Table 1).  Planning turns that rule plus any
hyperparameter overrides into an explicit list of :class:`JobSpec` cells
the executor can schedule in any order.

Cell identity is ``(benchmark, seed)`` — the unit of resume bookkeeping.
A retry of a faulted cell keeps its identity but runs under a *reseeded*
RNG stream (``run_seed = seed + RESEED_STRIDE * attempt``) so a failure
tangled with one RNG trajectory does not deterministically recur.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Mapping

__all__ = ["JobSpec", "CampaignSpec", "CampaignPlan", "plan_campaign",
           "RESEED_STRIDE"]

# Prime stride keeps retry streams disjoint from sibling cells' seeds for
# any realistic campaign width.
RESEED_STRIDE = 7919


@dataclass(frozen=True)
class JobSpec:
    """One schedulable run: a (benchmark, seed) cell at a given attempt."""

    benchmark: str
    seed: int
    attempt: int = 0
    overrides: tuple[tuple[str, Any], ...] = ()
    max_epochs: int | None = None
    timeout_s: float | None = None
    # Stable position in the plan — workers use it as the trace/event pid
    # so merged campaign traces keep one process row per cell.
    ordinal: int = 0
    # Campaign journal directory for live event/heartbeat streams; None
    # (e.g. plain `repro run`) disables stream files entirely.
    stream_dir: str | None = None
    # The owning campaign's id, stamped into the job's event stream
    # (``job_start``) so observability consumers can attribute per-job
    # streams without inferring from directory layout.
    campaign_id: str | None = None

    @property
    def cell(self) -> tuple[str, int]:
        return (self.benchmark, self.seed)

    @property
    def run_seed(self) -> int:
        """The RNG seed this attempt actually runs under."""
        return self.seed + RESEED_STRIDE * self.attempt

    def retry(self) -> "JobSpec":
        return replace(self, attempt=self.attempt + 1)

    @property
    def key(self) -> str:
        """Journal key for the cell (attempts share it)."""
        return f"{self.benchmark}/{self.seed}"


@dataclass(frozen=True)
class CampaignSpec:
    """What to run: benchmarks, run counts, overrides, per-job limits.

    ``seeds=None`` (the default) derives each benchmark's run count from
    its ``required_runs`` — the §3.2.2 rule.  An explicit ``seeds`` applies
    to every benchmark; planning flags any benchmark it undershoots.
    """

    benchmarks: tuple[str, ...]
    seeds: int | None = None
    overrides: Mapping[str, Any] | None = None
    max_epochs: int | None = None
    timeout_s: float | None = None

    def __post_init__(self):
        if not self.benchmarks:
            raise ValueError("a campaign needs at least one benchmark")
        if self.seeds is not None and self.seeds < 1:
            raise ValueError("seeds must be >= 1")


@dataclass
class CampaignPlan:
    """The expanded job graph plus planning diagnostics."""

    spec: CampaignSpec
    jobs: list[JobSpec] = field(default_factory=list)
    required: dict[str, int] = field(default_factory=dict)  # benchmark -> §3.2.2 count
    warnings: list[str] = field(default_factory=list)

    @property
    def cells(self) -> set[tuple[str, int]]:
        return {job.cell for job in self.jobs}

    def seeds_for(self, benchmark: str) -> list[int]:
        return sorted(job.seed for job in self.jobs if job.benchmark == benchmark)


def plan_campaign(spec: CampaignSpec, benchmark_specs: Mapping[str, Any]) -> CampaignPlan:
    """Expand a campaign spec against the suite's benchmark specs.

    ``benchmark_specs`` maps name → :class:`~repro.suite.base.BenchmarkSpec`
    (anything with ``required_runs``); unknown benchmark names are an
    immediate planning error, not a runtime fault.
    """
    unknown = [b for b in spec.benchmarks if b not in benchmark_specs]
    if unknown:
        raise KeyError(
            f"unknown benchmark(s) {unknown}; available: {sorted(benchmark_specs)}"
        )
    overrides = tuple(sorted((spec.overrides or {}).items()))
    plan = CampaignPlan(spec=spec)
    for benchmark in spec.benchmarks:
        required = int(benchmark_specs[benchmark].required_runs)
        plan.required[benchmark] = required
        count = spec.seeds if spec.seeds is not None else required
        if count < required:
            plan.warnings.append(
                f"{benchmark}: campaign has {count} run(s) but §3.2.2 requires "
                f"{required} — the result will not be scoreable as official"
            )
        base = len(plan.jobs)
        plan.jobs.extend(
            JobSpec(
                benchmark=benchmark,
                seed=seed,
                overrides=overrides,
                max_epochs=spec.max_epochs,
                timeout_s=spec.timeout_s,
                ordinal=base + seed,
            )
            for seed in range(count)
        )
    return plan
