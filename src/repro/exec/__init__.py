"""The execution engine: parallel, resumable, fault-tolerant campaigns.

The §3.2.2 variance-control rules make a submission ~55 independent runs
(5 per vision benchmark, 10 for the rest).  This package turns that from
a fragile sequential loop into a supervised *campaign*:

- :mod:`repro.exec.plan` — expand a campaign spec into (benchmark, seed)
  job cells with the required run counts;
- :mod:`repro.exec.workers` — one picklable job function, executed by an
  in-process sequential pool (the deterministic default) or a
  ``multiprocessing`` worker pool, bit-identical either way;
- :mod:`repro.exec.supervise` — retry faulted cells with reseeded RNG
  streams and capped exponential backoff; quality misses and timeouts
  are terminal, not faults;
- :mod:`repro.exec.journal` — a JSON journal persisted after every job
  completion, so ``repro campaign --resume DIR`` schedules only the
  remaining cells;
- :mod:`repro.exec.engine` — ties it together into a scored
  :class:`~repro.core.submission.Submission` plus a
  :class:`~repro.core.reporting.CampaignSummary`.
"""

from .plan import RESEED_STRIDE, CampaignPlan, CampaignSpec, JobSpec, plan_campaign
from .journal import JOURNAL_NAME, CampaignJournal, JobRecord
from .workers import (
    JobOutcome,
    MultiprocessExecutor,
    SequentialExecutor,
    execute_job,
)
from .supervise import RetryPolicy
from .engine import CampaignOutcome, default_system, run_campaign

__all__ = [
    "CampaignJournal",
    "CampaignOutcome",
    "CampaignPlan",
    "CampaignSpec",
    "JOURNAL_NAME",
    "JobOutcome",
    "JobRecord",
    "JobSpec",
    "MultiprocessExecutor",
    "RESEED_STRIDE",
    "RetryPolicy",
    "SequentialExecutor",
    "default_system",
    "execute_job",
    "plan_campaign",
    "run_campaign",
]
