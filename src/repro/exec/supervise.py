"""Fault supervision: retry policy with capped exponential backoff.

Classification (the engine applies it per :class:`JobOutcome`):

- **fault** (a :class:`~repro.core.runner.RunFailure` whose cause is not a
  timeout) — transient until proven otherwise: retried up to the cap,
  each attempt under a reseeded RNG stream and after an exponentially
  growing, capped backoff delay;
- **timeout** — deterministic runs that crossed the deadline once will
  cross it again, so timeouts are terminal (raise ``--timeout`` instead);
- **quality_miss** — a completed run below target is a *result*, not a
  fault (§3.2.2 scores it as a failed run); never retried;
- **reached** — done.
"""

from __future__ import annotations

from dataclasses import dataclass

from .workers import JobOutcome

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to re-run a faulted cell and how long to wait.

    ``delay_s(attempt)`` is the pause before executing attempt ``attempt``
    (the first retry is attempt 1): ``base * 2**(attempt-1)``, capped.
    """

    max_retries: int = 2
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0

    def __post_init__(self):
        if self.max_retries < 0:
            raise ValueError("max_retries cannot be negative")
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise ValueError("backoff delays cannot be negative")

    def delay_s(self, attempt: int) -> float:
        if attempt < 1:
            raise ValueError("retry attempts start at 1")
        return min(self.backoff_base_s * (2 ** (attempt - 1)), self.backoff_cap_s)

    def should_retry(self, outcome: JobOutcome) -> bool:
        return outcome.is_fault and outcome.job.attempt < self.max_retries
