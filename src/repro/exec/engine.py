"""The campaign engine: plan → schedule → supervise → journal → score.

One call, :func:`run_campaign`, owns a campaign end to end:

1. **plan** — expand the :class:`~repro.exec.plan.CampaignSpec` into
   (benchmark, seed) cells with the §3.2.2 run counts;
2. **resume** — drop every cell the journal already holds a terminal
   result for, reloading those runs from their ``# repro-run`` files;
3. **schedule** — dispatch the remainder to the executor in waves,
   journaling after every completion;
4. **supervise** — faulted cells re-enter the next wave (reseeded RNG
   stream, capped exponential backoff) until the retry cap; quality
   misses and timeouts are terminal;
5. **score** — benchmarks whose cells all reached target get the olympic
   mean; everything is folded into a :class:`~repro.core.submission.Submission`
   plus a :class:`~repro.core.reporting.CampaignSummary`.

Every scheduler decision increments a counter in the engine's metrics
registry (``campaign_*``), and per-run telemetry snapshots merge
parent-side with ``pid = seed`` so one Chrome trace shows all workers.
"""

from __future__ import annotations

import time
import zlib
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Callable, Mapping

from ..core.reporting import CampaignSummary
from ..core.results import BenchmarkScore, score_runs
from ..core.runner import RunResult
from ..core.submission import (
    Category,
    Division,
    Submission,
    SystemDescription,
    SystemType,
)
from ..telemetry import (
    EventBus,
    EventLog,
    MetricsRegistry,
    RunTelemetry,
    merged_run_telemetry,
)
from .journal import CampaignJournal, JobRecord
from .plan import CampaignPlan, CampaignSpec, plan_campaign
from .supervise import RetryPolicy
from .workers import JobOutcome, SequentialExecutor

__all__ = ["CampaignOutcome", "run_campaign", "default_system"]


def default_system(submitter: str) -> SystemDescription:
    """The single-host system description CLI campaigns run on."""
    return SystemDescription(
        submitter=submitter,
        system_name=f"{submitter}-system",
        system_type=SystemType.ON_PREMISE,
        num_nodes=1,
        processors_per_node=1,
        processor_type="host-cpu",
        accelerators_per_node=0,
        accelerator_type="none",
        host_memory_gb=8.0,
        interconnect="none",
    )


@dataclass
class CampaignOutcome:
    """Everything a finished (or resumed-and-finished) campaign produced."""

    plan: CampaignPlan
    journal: CampaignJournal
    summary: CampaignSummary
    scores: dict[str, BenchmarkScore] = field(default_factory=dict)
    unscored: dict[str, str] = field(default_factory=dict)
    runs_by_benchmark: dict[str, list[RunResult]] = field(default_factory=dict)
    submission: Submission | None = None
    telemetry: RunTelemetry | None = None
    scheduler_metrics: dict[str, dict[str, Any]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when every planned cell reached the quality target."""
        records = self.journal.jobs
        return all(
            (rec := records.get(f"{b}/{s}")) is not None and rec.status == "reached"
            for (b, s) in self.plan.cells
        )

    def bench_payload(self) -> dict[str, Any]:
        """The ``BENCH_campaign.json`` record: the perf trajectory datapoint."""
        return {
            "schema": "repro-campaign-bench/1",
            "benchmarks": list(self.summary.benchmarks),
            "total_cells": self.summary.total_cells,
            "executed": self.summary.executed,
            "skipped_resumed": self.summary.skipped_resumed,
            "retries": self.summary.retries,
            "faults": self.summary.faults,
            "timeouts": self.summary.timeouts,
            "quality_misses": self.summary.quality_misses,
            "wall_clock_s": self.summary.wall_clock_s,
            "total_ttt_s": self.summary.total_ttt_s,
            "speedup": self.summary.speedup,
            "jobs": {
                key: {
                    "status": rec.status,
                    "attempts": rec.attempts,
                    "time_to_train_s": rec.time_to_train_s,
                    "epochs": rec.epochs,
                    "quality": rec.quality,
                }
                for key, rec in sorted(self.journal.jobs.items())
            },
        }


def run_campaign(
    spec: CampaignSpec,
    *,
    executor=None,
    journal_dir=None,
    resume: bool = False,
    policy: RetryPolicy | None = None,
    sleeper: Callable[[float], None] = time.sleep,
    wall_clock: Callable[[], float] = time.perf_counter,
    benchmark_specs: Mapping[str, Any] | None = None,
    system: SystemDescription | None = None,
    event_clock: Callable[[], float] = time.time,
) -> CampaignOutcome:
    """Execute a campaign; see the module docstring for the pipeline.

    ``executor`` defaults to the in-process :class:`SequentialExecutor`;
    ``benchmark_specs`` defaults to the suite registry's specs.  Both are
    injectable together so tests can drive fake benchmarks on fake clocks.
    ``sleeper`` receives every backoff delay (inject a recorder to make
    retry pacing assertable without real sleeps).

    When the journal has a directory, the engine maintains the live
    observability streams: its own lifecycle events append to
    ``<dir>/events/campaign.jsonl`` and every dispatched job carries
    ``stream_dir`` so workers write per-job event/heartbeat files there —
    the sole inputs of ``repro monitor``.  ``event_clock`` stamps those
    records (epoch seconds by default, a fake clock in tests).
    """
    if benchmark_specs is None:
        from ..suite import REGISTRY, create_benchmark

        benchmark_specs = {name: create_benchmark(name).spec
                           for name in REGISTRY if name in spec.benchmarks}
    executor = executor or SequentialExecutor()
    policy = policy or RetryPolicy()
    metrics = MetricsRegistry()
    started = wall_clock()

    plan = plan_campaign(spec, benchmark_specs)
    # Campaign identity for observability consumers: the journal directory
    # name when on disk (what the monitor/server address it by), else a
    # stable digest of the spec so in-memory campaigns still have one.
    if journal_dir is not None:
        campaign_id = Path(journal_dir).name or "campaign"
    else:
        campaign_id = "mem-%08x" % zlib.crc32(repr((
            spec.benchmarks, spec.seeds,
            tuple(sorted((spec.overrides or {}).items())),
            spec.max_epochs, spec.timeout_s)).encode())
    campaign_meta = {
        "campaign_id": campaign_id,
        "benchmarks": list(spec.benchmarks),
        "seeds": spec.seeds,
        "overrides": dict(spec.overrides or {}),
        "max_epochs": spec.max_epochs,
        "timeout_s": spec.timeout_s,
        "executor": getattr(executor, "kind", type(executor).__name__),
        "retry_policy": {
            "max_retries": policy.max_retries,
            "backoff_base_s": policy.backoff_base_s,
            "backoff_cap_s": policy.backoff_cap_s,
        },
        # The full plan, so the monitor knows about cells that have not
        # produced a journal record or heartbeat yet (still "pending").
        "planned_cells": [[job.benchmark, job.seed] for job in plan.jobs],
    }
    if resume:
        if journal_dir is None:
            raise ValueError("resume requires a journal directory")
        journal = CampaignJournal.load(journal_dir)
        journal.campaign = campaign_meta
    else:
        journal = CampaignJournal(journal_dir, campaign=campaign_meta)
    # Persist the metadata (incl. planned_cells) before any job runs, so a
    # campaign killed mid-wave still shows its unstarted cells as pending.
    journal.flush()

    # -- resume: reload terminal cells, schedule only the remainder ----------
    results_by_cell: dict[tuple[str, int], RunResult] = {}
    resumed_cells = 0
    done = journal.completed_cells() if resume else set()
    wave = []
    for job in plan.jobs:
        prior = journal.load_result(*job.cell) if job.cell in done else None
        if prior is not None:
            results_by_cell[job.cell] = prior
            resumed_cells += 1
            metrics.counter("campaign_cells_resumed").inc()
        else:
            wave.append(job)

    # -- live streams: campaign event log + per-job stream directories -------
    events = EventBus(clock=event_clock)
    campaign_log: EventLog | None = None
    if journal.directory is not None:
        campaign_log = EventLog(journal.directory / "events" / "campaign.jsonl")
        events.subscribe(campaign_log.write)
    events.publish("campaign_start",
                   campaign=campaign_id,
                   benchmarks=list(spec.benchmarks),
                   planned_cells=len(plan.jobs),
                   resumed_cells=resumed_cells)

    # -- schedule + supervise, journaling after every completion -------------
    executed = retries = reached = quality_misses = faults = timeouts = 0
    total_ttt = 0.0
    backoffs_by_cell: dict[tuple[str, int], list[float]] = {}
    outcome_telemetry: list[RunTelemetry | None] = []
    wave = [replace(job, campaign_id=campaign_id,
                    stream_dir=(str(journal.directory)
                                if journal.directory is not None
                                else job.stream_dir))
            for job in wave]
    while wave:
        metrics.counter("campaign_jobs_scheduled").inc(len(wave))
        next_wave: list = []
        wave_delays: list[float] = []
        for outcome in executor.run(wave):
            executed += 1
            outcome_telemetry.append(outcome.telemetry)
            record = _record_for(outcome, backoffs_by_cell)
            will_retry = policy.should_retry(outcome)
            if outcome.status == "reached":
                reached += 1
                metrics.counter("campaign_jobs_reached").inc()
            elif outcome.status == "quality_miss":
                quality_misses += 1
                metrics.counter("campaign_quality_misses").inc()
            elif outcome.status == "timeout":
                timeouts += 1
                metrics.counter("campaign_timeouts").inc()
            else:
                metrics.counter("campaign_faults").inc()
                if will_retry:
                    retries += 1
                    metrics.counter("campaign_retries").inc()
                    retry_job = outcome.job.retry()
                    delay = policy.delay_s(retry_job.attempt)
                    backoffs_by_cell.setdefault(outcome.job.cell, []).append(delay)
                    record.backoffs_s = list(backoffs_by_cell[outcome.job.cell])
                    next_wave.append(retry_job)
                    wave_delays.append(delay)
                else:
                    faults += 1
            journal.record(record, outcome.result)
            events.publish("job_finished",
                           campaign=campaign_id,
                           benchmark=outcome.job.benchmark,
                           seed=outcome.job.seed,
                           status=outcome.status,
                           attempt=outcome.job.attempt,
                           will_retry=will_retry and outcome.is_fault)
            if outcome.result is not None:
                results_by_cell[outcome.job.cell] = outcome.result
                total_ttt += outcome.result.time_to_train_s
        if wave_delays:
            # One parallel backoff pause per wave: every retry in it has
            # waited at least its own delay.
            pause = max(wave_delays)
            metrics.counter("campaign_backoff_seconds").inc(pause)
            events.publish("wave_backoff", pause_s=pause, retries=len(next_wave))
            sleeper(pause)
        wave = next_wave

    # -- aggregate: runs, scores, submission, summary ------------------------
    runs_by_benchmark: dict[str, list[RunResult]] = {}
    for benchmark in spec.benchmarks:
        runs_by_benchmark[benchmark] = [
            results_by_cell[(benchmark, seed)]
            for seed in plan.seeds_for(benchmark)
            if (benchmark, seed) in results_by_cell
        ]

    scores: dict[str, BenchmarkScore] = {}
    unscored: dict[str, str] = {}
    submission = Submission(
        system or default_system("campaign"), Division.CLOSED, Category.RESEARCH
    )
    for benchmark in spec.benchmarks:
        planned = plan.seeds_for(benchmark)
        runs = runs_by_benchmark[benchmark]
        converged = [r for r in runs if r.reached_target]
        if converged:
            submission.add_runs(benchmark, converged)
        missing = len(planned) - len(runs)
        missed = len(runs) - len(converged)
        if missing:
            unscored[benchmark] = f"{missing} cell(s) failed without a result"
        elif missed:
            unscored[benchmark] = f"{missed} run(s) missed the quality target"
        elif len(converged) < 3:
            unscored[benchmark] = (
                f"olympic mean needs >= 3 runs, have {len(converged)}"
            )
        else:
            scores[benchmark] = score_runs(converged)

    # ``total_ttt`` accumulated only over runs executed *this* invocation,
    # so the speedup compares wall-clock against work actually paid for
    # (resumed cells cost nothing now).
    summary = CampaignSummary(
        benchmarks=tuple(spec.benchmarks),
        total_cells=len(plan.jobs),
        executed=executed,
        skipped_resumed=resumed_cells,
        reached=reached,
        quality_misses=quality_misses,
        faults=faults,
        timeouts=timeouts,
        retries=retries,
        wall_clock_s=wall_clock() - started,
        total_ttt_s=total_ttt,
    )

    events.publish("campaign_stop",
                   executed=executed, reached=reached, faults=faults,
                   timeouts=timeouts, quality_misses=quality_misses,
                   retries=retries, wall_clock_s=summary.wall_clock_s)
    if campaign_log is not None:
        campaign_log.close()

    return CampaignOutcome(
        plan=plan,
        journal=journal,
        summary=summary,
        scores=scores,
        unscored=unscored,
        runs_by_benchmark=runs_by_benchmark,
        submission=submission if submission.runs else None,
        telemetry=merged_run_telemetry(outcome_telemetry),
        scheduler_metrics=metrics.snapshot(),
    )


def _record_for(outcome: JobOutcome,
                backoffs_by_cell: dict[tuple[str, int], list[float]]) -> JobRecord:
    job = outcome.job
    result = outcome.result
    return JobRecord(
        benchmark=job.benchmark,
        seed=job.seed,
        status=outcome.status,
        attempts=job.attempt + 1,
        run_seed=job.run_seed,
        quality=None if result is None else result.quality,
        epochs=None if result is None else result.epochs,
        time_to_train_s=None if result is None else result.time_to_train_s,
        error=outcome.error,
        backoffs_s=list(backoffs_by_cell.get(job.cell, [])),
    )
