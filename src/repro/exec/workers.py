"""Job execution: one worker function, two pools.

:func:`execute_job` is the single unit of work — build the benchmark,
run it under the timing rules with telemetry ``pid = ordinal``, classify
the outcome.  It is a module-level function over picklable dataclasses so
the exact same code runs in-process (:class:`SequentialExecutor`, the
deterministic default every test leans on) or in a worker process
(:class:`MultiprocessExecutor`).

When the job carries a ``stream_dir``, the worker also maintains the live
side of observability: every published event is appended to a per-job
JSONL stream and folded into a heartbeat file (pid, epoch, step, last
quality snapshot) that the parent's monitor reads while the job runs.
Streams are plain files, so they survive the worker being killed — at
worst the event log ends in one truncated line, which readers tolerate.

Both executors yield :class:`JobOutcome` objects **as jobs finish** so the
engine can journal after every completion; the multiprocess pool therefore
yields in completion order, not submission order.  Outcomes carry their
:class:`~repro.exec.plan.JobSpec`, so order never matters downstream.

Results are bit-identical across executors by construction: a run's
trajectory is a function of ``(benchmark, run_seed, hyperparameters)``
only — worker processes share nothing, and the parent merges their
telemetry snapshots after the fact.
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

from pathlib import Path

from ..core.runner import BenchmarkRunner, RunFailure, RunResult, RunTimeout
from ..core.timing import Clock
from ..suite.base import Benchmark
from ..telemetry import EventLog, HeartbeatWriter, RunTelemetry, Telemetry
from .plan import JobSpec

__all__ = ["JobOutcome", "execute_job", "SequentialExecutor",
           "MultiprocessExecutor"]

BenchmarkFactory = Callable[[str], Benchmark]


@dataclass
class JobOutcome:
    """What one attempt of one cell produced (picklable, process-safe)."""

    job: JobSpec
    status: str  # reached | quality_miss | fault | timeout
    result: RunResult | None = None
    error: str | None = None  # "ExcType: message" for fault/timeout
    error_type: str | None = None
    failure_telemetry: RunTelemetry | None = None

    @property
    def is_fault(self) -> bool:
        return self.status == "fault"

    @property
    def telemetry(self) -> RunTelemetry | None:
        if self.result is not None:
            return self.result.telemetry
        return self.failure_telemetry


def execute_job(
    job: JobSpec,
    benchmark_factory: BenchmarkFactory | None = None,
    clock: Clock | None = None,
    events_clock=None,
) -> JobOutcome:
    """Run one job attempt and classify its outcome.

    The default factory resolves the benchmark from the suite registry —
    the only thing a spawned worker needs is the job spec.  Telemetry is
    always collected with ``pid = ordinal`` (the cell's position in the
    plan, not the reseeded attempt seed) so merged campaign traces keep
    one named process row per cell.  ``events_clock`` defaults to epoch
    seconds — the only clock comparable across worker processes — and is
    injectable so stream files are deterministic under a fake clock.
    """
    if benchmark_factory is None:
        from ..suite import create_benchmark as benchmark_factory

    benchmark = benchmark_factory(job.benchmark)
    runner = BenchmarkRunner(clock=clock)
    telemetry = Telemetry(
        clock=runner.clock,
        pid=job.ordinal,
        process_name=f"{job.benchmark}/seed{job.seed}",
        thread_name="runner",
        events_clock=events_clock,
    )

    log: EventLog | None = None
    heartbeat: HeartbeatWriter | None = None
    if job.stream_dir:
        stem = f"{job.benchmark}_seed{job.seed}"
        stream_root = Path(job.stream_dir)
        log = EventLog(stream_root / "events" / f"{stem}.jsonl")
        telemetry.events.subscribe(log.write)
        heartbeat = HeartbeatWriter(
            stream_root / "heartbeats" / f"{stem}.json",
            pid=job.ordinal, benchmark=job.benchmark, seed=job.seed,
            attempt=job.attempt, clock=telemetry.events.clock,
        )
        telemetry.events.subscribe(heartbeat.on_event)
        heartbeat.beat(status="running")
        # First record of every per-job stream: who this stream belongs
        # to, so consumers never have to infer identity from file names.
        telemetry.events.publish(
            "job_start", benchmark=job.benchmark, seed=job.seed,
            attempt=job.attempt, campaign=job.campaign_id)

    try:
        try:
            result = runner.run(
                benchmark,
                seed=job.run_seed,
                hyperparameter_overrides=dict(job.overrides) or None,
                max_epochs=job.max_epochs,
                telemetry=telemetry,
                deadline_s=job.timeout_s,
            )
        except RunFailure as failure:
            status = "timeout" if isinstance(failure.cause, RunTimeout) else "fault"
            if heartbeat is not None:
                heartbeat.beat(status=status)
            return JobOutcome(
                job=job,
                status=status,
                error=f"{type(failure.cause).__name__}: {failure.cause}",
                error_type=type(failure.cause).__name__,
                failure_telemetry=failure.telemetry,
            )
        status = "reached" if result.reached_target else "quality_miss"
        if heartbeat is not None:
            heartbeat.beat(status=status, quality=result.quality)
        return JobOutcome(job=job, status=status, result=result)
    finally:
        if log is not None:
            log.close()


class SequentialExecutor:
    """In-process, in-order execution — the deterministic fallback/default.

    Accepts an injectable benchmark factory and clock so tests can drive
    fake benchmarks on a fake clock; the multiprocess pool intentionally
    cannot (its workers must build everything from the picklable spec).
    """

    kind = "sequential"

    def __init__(self, benchmark_factory: BenchmarkFactory | None = None,
                 clock: Clock | None = None, events_clock=None):
        self.benchmark_factory = benchmark_factory
        self.clock = clock
        self.events_clock = events_clock

    def run(self, jobs: Iterable[JobSpec]) -> Iterator[JobOutcome]:
        for job in jobs:
            yield execute_job(job, self.benchmark_factory, self.clock,
                              self.events_clock)


class MultiprocessExecutor:
    """A ``multiprocessing``-based worker pool (spawned processes).

    ``spawn`` is used on every platform: workers import the package fresh,
    share no interpreter state with the parent, and therefore cannot leak
    RNG or telemetry state between jobs — the property the bit-identical
    guarantee rests on.
    """

    kind = "multiprocess"

    def __init__(self, max_workers: int, mp_context: str = "spawn",
                 processes_per_job: int = 1):
        if max_workers < 1:
            raise ValueError("need at least one worker")
        if processes_per_job < 1:
            raise ValueError("processes_per_job must be at least 1")
        self.max_workers = max_workers
        self.mp_context = mp_context
        # Jobs that fork their own data-parallel pool (dp_workers > 1)
        # occupy several cores each; shrinking the outer pool accordingly
        # keeps campaign parallelism from oversubscribing the machine.
        self.processes_per_job = processes_per_job

    @property
    def effective_workers(self) -> int:
        return max(1, self.max_workers // self.processes_per_job)

    def run(self, jobs: Iterable[JobSpec]) -> Iterator[JobOutcome]:
        jobs = list(jobs)
        if not jobs:
            return
        ctx = multiprocessing.get_context(self.mp_context)
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=min(self.effective_workers, len(jobs)), mp_context=ctx
        ) as pool:
            futures = [pool.submit(execute_job, job) for job in jobs]
            for future in concurrent.futures.as_completed(futures):
                yield future.result()
