"""Batch-size → epochs-to-target convergence models (§2.2.2).

"MLPerf v0.5 ResNet-50 takes around 64 epochs to reach the target top-1
accuracy ... at a minibatch size of 4K, while a minibatch size of 16K can
require over 80 epochs ... resulting in a 30% increase in computation."

Two models:

- :class:`MeasuredConvergence` interpolates epochs-to-target measured by
  actually training the mini-benchmarks at several batch sizes (the
  §2.2.2 bench produces these measurements);
- :class:`CriticalBatchModel` is the analytic gradient-noise model
  ``epochs(B) = e_min * (1 + B / B_crit)`` (McCandlish et al.'s critical
  batch size), fit from measured points and used by the round simulator to
  extrapolate to datacenter-scale batches.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CriticalBatchModel", "MeasuredConvergence", "fit_critical_batch"]


@dataclass(frozen=True)
class CriticalBatchModel:
    """``epochs(B) = e_min * (1 + B / B_crit)``.

    Below ``B_crit`` bigger batches are nearly free (epochs ~ e_min);
    beyond it the epoch count grows linearly — reproducing the §2.2.2
    observation that 4K→16K raised ResNet epochs ~30%.
    """

    e_min: float
    b_crit: float

    def epochs_to_target(self, batch_size: float) -> float:
        if batch_size <= 0:
            raise ValueError("batch size must be positive")
        return self.e_min * (1.0 + batch_size / self.b_crit)

    def computation_overhead(self, batch_size: float, reference_batch: float) -> float:
        """Relative increase in total computation vs the reference batch."""
        return self.epochs_to_target(batch_size) / self.epochs_to_target(reference_batch) - 1.0


class MeasuredConvergence:
    """Piecewise-linear interpolation of measured (batch, epochs) points."""

    def __init__(self, measurements: dict[int, float]):
        if len(measurements) < 1:
            raise ValueError("need at least one measurement")
        items = sorted(measurements.items())
        self.batches = np.array([b for b, _ in items], dtype=np.float64)
        self.epochs = np.array([e for _, e in items], dtype=np.float64)

    def epochs_to_target(self, batch_size: float) -> float:
        if batch_size <= 0:
            raise ValueError("batch size must be positive")
        # Linear interpolation inside the measured range, linear
        # extrapolation from the last two points beyond it.
        if len(self.batches) == 1 or batch_size <= self.batches[-1]:
            return float(np.interp(batch_size, self.batches, self.epochs))
        b0, b1 = self.batches[-2], self.batches[-1]
        e0, e1 = self.epochs[-2], self.epochs[-1]
        slope = (e1 - e0) / (b1 - b0)
        return float(e1 + slope * (batch_size - b1))


def fit_critical_batch(measurements: dict[int, float]) -> CriticalBatchModel:
    """Least-squares fit of the critical-batch model to measured points.

    ``epochs = e_min + (e_min / b_crit) * B`` is linear in ``B``; fit the
    line, then recover the two parameters.
    """
    if len(measurements) < 2:
        raise ValueError("need at least two measurements to fit")
    batches = np.array(sorted(measurements))
    epochs = np.array([measurements[b] for b in sorted(measurements)], dtype=np.float64)
    slope, intercept = np.polyfit(batches, epochs, 1)
    e_min = max(float(intercept), 1e-9)
    slope = max(float(slope), 1e-12)
    return CriticalBatchModel(e_min=e_min, b_crit=e_min / slope)
