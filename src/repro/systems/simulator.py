"""Synchronous data-parallel training-time simulator.

Combines the hardware model (compute + all-reduce per step) with a
convergence model (epochs-to-target as a function of global batch) to
produce simulated time-to-train — the quantity the §5 scaling studies
(Figures 4 and 5) reason about.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil

from .convergence import CriticalBatchModel
from .hardware import SystemConfig

__all__ = ["WorkloadProfile", "step_time", "simulate_time_to_train", "optimal_batch_search"]


@dataclass(frozen=True)
class WorkloadProfile:
    """Everything the simulator needs to know about one benchmark."""

    name: str
    dataset_size: int  # samples per epoch
    model_bytes: float  # gradient payload for all-reduce
    convergence: CriticalBatchModel
    min_local_batch: int = 1  # below this, per-chip utilization is pointless
    max_global_batch: int = 1 << 30  # optimizer-limited (the LARS rule knob)


def step_time(system: SystemConfig, profile: WorkloadProfile, global_batch: int) -> float:
    """Seconds per synchronous data-parallel step."""
    if global_batch < system.num_chips * profile.min_local_batch:
        raise ValueError(
            f"global batch {global_batch} too small for {system.num_chips} chips "
            f"(min local batch {profile.min_local_batch})"
        )
    local_batch = global_batch / system.num_chips
    if local_batch > system.chip.max_local_batch:
        raise ValueError(
            f"local batch {local_batch:.0f} exceeds chip capacity "
            f"{system.chip.max_local_batch}"
        )
    compute = system.chip.compute_time(local_batch, system.software_efficiency)
    comm = system.interconnect.allreduce_time(system.num_chips, profile.model_bytes)
    return compute + comm


def simulate_time_to_train(
    system: SystemConfig,
    profile: WorkloadProfile,
    global_batch: int,
    epochs_multiplier: float = 1.0,
) -> float:
    """Simulated TTT: steps/epoch × epochs-to-target(batch) × step time.

    ``epochs_multiplier`` models quality-target raises (v0.6 lifted
    thresholds, lengthening training at equal batch).
    """
    if global_batch > profile.max_global_batch:
        raise ValueError(
            f"batch {global_batch} exceeds workload's max usable batch "
            f"{profile.max_global_batch}"
        )
    epochs = profile.convergence.epochs_to_target(global_batch) * epochs_multiplier
    steps_per_epoch = max(ceil(profile.dataset_size / global_batch), 1)
    return epochs * steps_per_epoch * step_time(system, profile, global_batch)


def optimal_batch_search(
    system: SystemConfig,
    profile: WorkloadProfile,
    epochs_multiplier: float = 1.0,
) -> tuple[float, int]:
    """Best (time-to-train, global batch) for a fixed system.

    Scans power-of-two global batches between the system's minimum and the
    smaller of chip memory capacity and the workload's optimizer-limited
    maximum — the search a submitter performs when tuning an entry.
    """
    lo = system.num_chips * profile.min_local_batch
    hi = min(system.num_chips * system.chip.max_local_batch, profile.max_global_batch)
    if lo > hi:
        raise ValueError(f"system {system.num_chips} chips cannot run {profile.name}: "
                         f"min feasible batch {lo} > max usable batch {hi}")
    batch = 1
    while batch < lo:
        batch *= 2
    best: tuple[float, int] | None = None
    while batch <= hi:
        ttt = simulate_time_to_train(system, profile, batch, epochs_multiplier)
        if best is None or ttt < best[0]:
            best = (ttt, batch)
        batch *= 2
    assert best is not None
    return best
