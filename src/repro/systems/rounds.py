"""Submission-round simulation: v0.5 → v0.6 (§5, Figures 4 and 5).

The paper's §5 analyzes two submission rounds six months apart on
*unchanged hardware* and attributes the progress to (a) better software
stacks, (b) rule changes — chiefly allowing LARS for large ResNet batches,
which unlocked much larger usable global batches — and (c) higher quality
targets pushing in the opposite direction.  This module encodes exactly
those three mechanisms:

- each round carries a per-benchmark **software efficiency** multiplier,
- a per-benchmark **maximum usable global batch** (the optimizer rule),
- an **epochs multiplier** (raised quality targets lengthen training),
- and a cap on available system scale.

Figure 4 = speedup of the fastest 16-chip entry between rounds; Figure 5 =
growth in chip count of the fastest overall entry.  Absolute parameter
values are representative (documented in EXPERIMENTS.md); the *mechanism*
— who wins and why the ratios move — is the reproduction target.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from .convergence import CriticalBatchModel
from .hardware import ChipSpec, Interconnect, SystemConfig
from .simulator import WorkloadProfile, optimal_batch_search

__all__ = [
    "RoundBenchmarkRules",
    "Round",
    "ROUND_V05",
    "ROUND_V06",
    "REFERENCE_CHIP",
    "REFERENCE_FABRIC",
    "SCALING_BENCHMARKS",
    "Entry",
    "best_entry_at_scale",
    "fastest_overall_entry",
    "figure4_speedups",
    "figure5_scale_growth",
]

# One representative accelerator and fabric, fixed across rounds ("the
# underlying hardware systems did not change").
REFERENCE_CHIP = ChipSpec(
    name="accel-v1",
    samples_per_second=1600.0,
    step_overhead_s=2e-3,
    max_local_batch=256,
)
REFERENCE_FABRIC = Interconnect(
    name="fat-tree-100g",
    bandwidth_bytes_per_s=12.5e9,
    latency_s=1.5e-6,
)

# The five benchmarks §5 compares across rounds (NCF and MiniGo were
# modified/replaced between rounds and excluded from the comparison).
SCALING_BENCHMARKS: dict[str, WorkloadProfile] = {
    "image_classification": WorkloadProfile(
        name="image_classification",
        dataset_size=1_281_167,
        model_bytes=102e6,  # ResNet-50 fp32 gradients
        convergence=CriticalBatchModel(e_min=57.6, b_crit=36_000.0),
        min_local_batch=16,
    ),
    "object_detection": WorkloadProfile(
        name="object_detection",
        dataset_size=118_000,
        model_bytes=140e6,
        convergence=CriticalBatchModel(e_min=45.0, b_crit=4_000.0),
        min_local_batch=16,
    ),
    "instance_segmentation": WorkloadProfile(
        name="instance_segmentation",
        dataset_size=118_000,
        model_bytes=180e6,
        convergence=CriticalBatchModel(e_min=12.0, b_crit=1_200.0),
        min_local_batch=16,
    ),
    "translation_recurrent": WorkloadProfile(
        name="translation_recurrent",
        dataset_size=4_500_000,
        model_bytes=520e6,
        convergence=CriticalBatchModel(e_min=2.2, b_crit=8_000.0),
        min_local_batch=16,
    ),
    "translation_transformer": WorkloadProfile(
        name="translation_transformer",
        dataset_size=4_500_000,
        model_bytes=850e6,
        convergence=CriticalBatchModel(e_min=2.0, b_crit=16_000.0),
        min_local_batch=16,
    ),
}


@dataclass(frozen=True)
class RoundBenchmarkRules:
    """Per-benchmark knobs that changed between rounds."""

    software_efficiency: float
    max_global_batch: int
    epochs_multiplier: float  # quality-target raises


@dataclass(frozen=True)
class Round:
    """One submission round's rule set."""

    name: str
    max_system_chips: int
    benchmark_rules: dict[str, RoundBenchmarkRules]


# v0.5: baseline software, momentum-SGD batch limits, original targets.
ROUND_V05 = Round(
    name="v0.5",
    max_system_chips=1024,
    benchmark_rules={
        "image_classification": RoundBenchmarkRules(1.00, 8_192, 1.0),
        "object_detection": RoundBenchmarkRules(1.00, 2_048, 1.0),
        "instance_segmentation": RoundBenchmarkRules(1.00, 512, 1.0),
        "translation_recurrent": RoundBenchmarkRules(1.00, 8_192, 1.0),
        "translation_transformer": RoundBenchmarkRules(1.00, 8_192, 1.0),
    },
)

# v0.6: matured software stacks (per-benchmark gains), LARS unlocks big
# ResNet batches, GNMT/Transformer large-batch recipes mature, quality
# targets raised (epochs multiplier > 1), larger systems fielded.
ROUND_V06 = Round(
    name="v0.6",
    max_system_chips=4096,
    benchmark_rules={
        "image_classification": RoundBenchmarkRules(1.50, 65_536, 1.10),
        "object_detection": RoundBenchmarkRules(1.70, 16_384, 1.12),
        "instance_segmentation": RoundBenchmarkRules(1.45, 2_048, 1.05),
        "translation_recurrent": RoundBenchmarkRules(1.70, 32_768, 1.10),
        "translation_transformer": RoundBenchmarkRules(1.50, 65_536, 1.08),
    },
)


@dataclass(frozen=True)
class Entry:
    """A simulated submission entry: the best configuration found."""

    benchmark: str
    round_name: str
    num_chips: int
    global_batch: int
    time_to_train_s: float


def _profile_for_round(benchmark: str, round_: Round) -> tuple[WorkloadProfile, RoundBenchmarkRules]:
    profile = SCALING_BENCHMARKS[benchmark]
    rules = round_.benchmark_rules[benchmark]
    return replace(profile, max_global_batch=rules.max_global_batch), rules


def best_entry_at_scale(benchmark: str, round_: Round, num_chips: int) -> Entry:
    """Fastest entry for a benchmark at a fixed chip count."""
    profile, rules = _profile_for_round(benchmark, round_)
    system = SystemConfig(
        chip=REFERENCE_CHIP,
        num_chips=num_chips,
        interconnect=REFERENCE_FABRIC,
        software_efficiency=rules.software_efficiency,
    )
    ttt, batch = optimal_batch_search(system, profile, rules.epochs_multiplier)
    return Entry(benchmark, round_.name, num_chips, batch, ttt)


def fastest_overall_entry(benchmark: str, round_: Round) -> Entry:
    """Fastest entry over all feasible system scales (powers of two)."""
    best: Entry | None = None
    chips = 1
    while chips <= round_.max_system_chips:
        try:
            entry = best_entry_at_scale(benchmark, round_, chips)
        except ValueError:
            break  # scale infeasible for this workload's batch limits
        if best is None or entry.time_to_train_s < best.time_to_train_s:
            best = entry
        chips *= 2
    assert best is not None
    return best


def figure4_speedups(chips: int = 16) -> dict[str, float]:
    """Figure 4: per-benchmark fastest-entry speedup v0.5 → v0.6 at a
    fixed chip count, despite the raised quality targets."""
    speedups = {}
    for benchmark in SCALING_BENCHMARKS:
        v05 = best_entry_at_scale(benchmark, ROUND_V05, chips)
        v06 = best_entry_at_scale(benchmark, ROUND_V06, chips)
        speedups[benchmark] = v05.time_to_train_s / v06.time_to_train_s
    return speedups


def figure5_scale_growth() -> dict[str, tuple[Entry, Entry]]:
    """Figure 5: the fastest overall entries of both rounds per benchmark."""
    return {
        benchmark: (
            fastest_overall_entry(benchmark, ROUND_V05),
            fastest_overall_entry(benchmark, ROUND_V06),
        )
        for benchmark in SCALING_BENCHMARKS
    }
