"""Data-parallel training-system simulator (the §5 scaling-study substrate)."""

from .hardware import ChipSpec, Interconnect, SystemConfig
from .convergence import CriticalBatchModel, MeasuredConvergence, fit_critical_batch
from .simulator import WorkloadProfile, optimal_batch_search, simulate_time_to_train, step_time
from .dataparallel import (
    AsynchronousDataParallel,
    SynchronousDataParallel,
    shard_batch,
)
from .rounds import (
    Entry,
    REFERENCE_CHIP,
    REFERENCE_FABRIC,
    ROUND_V05,
    ROUND_V06,
    Round,
    RoundBenchmarkRules,
    SCALING_BENCHMARKS,
    best_entry_at_scale,
    fastest_overall_entry,
    figure4_speedups,
    figure5_scale_growth,
)

__all__ = [
    "AsynchronousDataParallel",
    "SynchronousDataParallel",
    "shard_batch",
    "ChipSpec",
    "Interconnect",
    "SystemConfig",
    "CriticalBatchModel",
    "MeasuredConvergence",
    "fit_critical_batch",
    "WorkloadProfile",
    "optimal_batch_search",
    "simulate_time_to_train",
    "step_time",
    "Entry",
    "REFERENCE_CHIP",
    "REFERENCE_FABRIC",
    "ROUND_V05",
    "ROUND_V06",
    "Round",
    "RoundBenchmarkRules",
    "SCALING_BENCHMARKS",
    "best_entry_at_scale",
    "fastest_overall_entry",
    "figure4_speedups",
    "figure5_scale_growth",
]
