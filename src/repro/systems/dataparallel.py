"""Executable data-parallel training semantics (not just a cost model).

The Figure 4/5 studies use an analytic *time* model, but the paper's
§2.2.2-2.2.3 claims are about data-parallel *mathematics*: synchronous
SGD over W workers with local batch b is equivalent to one step at global
batch W·b, while asynchronous updates introduce gradient staleness and
"different gradient accumulation orders".  This module executes both
schemes against the real framework so those claims are testable:

- :class:`SynchronousDataParallel` splits each global batch across worker
  shards, averages per-worker gradients (a software all-reduce), and
  applies one optimizer step — bit-for-bit equivalent (up to float
  summation order) to single-worker large-batch training.
- :class:`AsynchronousDataParallel` lets each worker compute its gradient
  against a stale snapshot of the weights and applies updates in arrival
  order — reproducing the non-determinism the paper names as a source of
  run-to-run variance.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..framework.module import Module
from ..framework.optim import Optimizer
from ..framework.tensor import Tensor
from ..telemetry import current_metrics, current_tracer

__all__ = ["SynchronousDataParallel", "AsynchronousDataParallel", "shard_batch"]

LossFn = Callable[[Module, tuple], Tensor]


def shard_batch(arrays: tuple[np.ndarray, ...], num_workers: int) -> list[tuple[np.ndarray, ...]]:
    """Split each array along axis 0 into ``num_workers`` near-equal shards.

    The global batch must be divisible by the worker count — the same
    constraint real data-parallel launchers impose.  All arrays must agree
    on the batch axis (a batch of inputs and labels of different lengths
    is a data bug, not a sharding decision).
    """
    if num_workers < 1:
        raise ValueError(f"need at least one worker, got {num_workers}")
    if not arrays:
        raise ValueError("cannot shard an empty batch tuple")
    n = len(arrays[0])
    mismatched = [len(a) for a in arrays if len(a) != n]
    if mismatched:
        raise ValueError(
            f"batch arrays disagree on length: {n} vs {mismatched}"
        )
    if n % num_workers != 0:
        raise ValueError(f"global batch {n} not divisible by {num_workers} workers")
    size = n // num_workers
    return [
        tuple(a[w * size : (w + 1) * size] for a in arrays) for w in range(num_workers)
    ]


class SynchronousDataParallel:
    """Synchronous data parallelism over one in-process model replica.

    Gradients are computed shard by shard and averaged — mathematically an
    all-reduce.  Loss scaling uses the shard count so that the averaged
    gradient equals the gradient of the mean loss over the global batch.
    """

    def __init__(self, model: Module, optimizer: Optimizer, num_workers: int, loss_fn: LossFn):
        if num_workers < 1:
            raise ValueError("need at least one worker")
        self.model = model
        self.optimizer = optimizer
        self.num_workers = num_workers
        self.loss_fn = loss_fn

    def step(self, batch: tuple[np.ndarray, ...]) -> float:
        """One global step; returns the mean loss across workers."""
        tracer = current_tracer()
        shards = shard_batch(batch, self.num_workers)
        accumulated: dict[int, np.ndarray] = {}
        total_loss = 0.0
        with tracer.span("dp_step", num_workers=self.num_workers, batch=len(batch[0])):
            for w, shard in enumerate(shards):
                with tracer.span("worker_grad", worker=w):
                    self.model.zero_grad()
                    loss = self.loss_fn(self.model, shard)
                    loss.backward()
                total_loss += float(loss.data)
                for p in self.model.parameters():
                    if p.grad is None:
                        continue
                    if id(p) in accumulated:
                        accumulated[id(p)] += p.grad
                    else:
                        accumulated[id(p)] = p.grad.copy()
            # All-reduce: average and install the global gradient.
            with tracer.span("all_reduce", num_workers=self.num_workers):
                reduced_elements = 0
                reduced_bytes = 0
                for p in self.model.parameters():
                    grad = accumulated.get(id(p))
                    if grad is not None:
                        reduced_elements += grad.size
                        reduced_bytes += grad.nbytes
                    p.grad = None if grad is None else grad / self.num_workers
                metrics = current_metrics()
                metrics.counter("allreduce_elements").inc(reduced_elements)
                metrics.counter("allreduce_bytes").inc(reduced_bytes)
            self.optimizer.step()
        self.model.zero_grad()
        return total_loss / self.num_workers


class AsynchronousDataParallel:
    """Asynchronous (parameter-server-style) updates with bounded staleness.

    Each simulated worker holds a snapshot of the weights taken up to
    ``max_staleness`` updates ago; workers compute gradients against their
    snapshots and the server applies them in a seeded arrival order.  Runs
    with different seeds follow different trajectories even on identical
    data — the §2.2.3 phenomenon.
    """

    def __init__(self, model: Module, optimizer: Optimizer, num_workers: int,
                 loss_fn: LossFn, rng: np.random.Generator, max_staleness: int = 1):
        if num_workers < 1:
            raise ValueError("need at least one worker")
        if max_staleness < 0:
            raise ValueError("staleness cannot be negative")
        self.model = model
        self.optimizer = optimizer
        self.num_workers = num_workers
        self.loss_fn = loss_fn
        self.rng = rng
        self.max_staleness = max_staleness
        self._snapshots: list[dict[str, np.ndarray]] = []
        # Buffer reuse: snapshot dicts evicted from the staleness window
        # are recycled (np.copyto into their arrays) instead of allocating
        # a fresh state_dict copy per update, and stale weights are loaded
        # through one reused scratch buffer per parameter rather than a
        # second full .copy() per worker.
        self._retired: list[dict[str, np.ndarray]] = []
        self._scratch: dict[str, np.ndarray] = {}

    def _snapshot(self) -> dict[str, np.ndarray]:
        while self._retired:
            snap = self._retired.pop()
            for name, p in self.model.named_parameters():
                buf = snap.get(name)
                if buf is None or buf.shape != p.data.shape or buf.dtype != p.data.dtype:
                    snap[name] = p.data.copy()
                else:
                    np.copyto(buf, p.data)
            return snap
        return self.model.state_dict()

    def _push_snapshot(self) -> None:
        self._snapshots.append(self._snapshot())
        keep = self.max_staleness + 1
        if len(self._snapshots) > keep:
            self._retired.extend(self._snapshots[:-keep])
            self._snapshots = self._snapshots[-keep:]

    def _load_stale(self, live_state: dict[str, "Tensor"],
                    stale: dict[str, np.ndarray]) -> None:
        """Point parameters at reused scratch copies of a stale snapshot."""
        for name, p in live_state.items():
            buf = self._scratch.get(name)
            if buf is None or buf.shape != stale[name].shape or buf.dtype != stale[name].dtype:
                buf = stale[name].copy()
                self._scratch[name] = buf
            else:
                np.copyto(buf, stale[name])
            p.data = buf

    def step(self, batch: tuple[np.ndarray, ...]) -> float:
        """One asynchronous round: every worker contributes one update."""
        shards = shard_batch(batch, self.num_workers)
        order = self.rng.permutation(self.num_workers)
        self._push_snapshot()
        total_loss = 0.0
        live_state = {name: p for name, p in self.model.named_parameters()}
        for worker in order:
            # The worker computes its gradient against a stale snapshot.
            stale = self._snapshots[int(self.rng.integers(0, len(self._snapshots)))]
            live_values = {name: p.data for name, p in live_state.items()}
            self._load_stale(live_state, stale)
            self.model.zero_grad()
            loss = self.loss_fn(self.model, shards[worker])
            loss.backward()
            total_loss += float(loss.data)
            # Server applies the (stale) gradient to the *live* weights.
            for name, p in live_state.items():
                p.data = live_values[name]
            self.optimizer.step()
            self._push_snapshot()
        self.model.zero_grad()
        return total_loss / self.num_workers
