"""Hardware models for the training-system simulator.

The paper's §5 results compare systems spanning orders of magnitude in
chip count.  We model the three quantities that drive data-parallel
time-to-train:

- per-chip compute throughput (with a fixed per-step launch overhead, so
  small local batches waste utilization — the reason scale-out wants big
  global batches),
- interconnect bandwidth/latency for gradient all-reduce,
- the software stack's efficiency multiplier (the thing that improved
  between v0.5 and v0.6 — "much of the performance and scaling
  improvements were incorporated into the underlying software
  infrastructure").
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["ChipSpec", "Interconnect", "SystemConfig"]


@dataclass(frozen=True)
class ChipSpec:
    """One accelerator chip."""

    name: str
    samples_per_second: float  # throughput at full utilization
    step_overhead_s: float  # fixed per-step cost (kernel launch, sync)
    max_local_batch: int  # memory-capacity limit per chip

    def compute_time(self, local_batch: float, software_efficiency: float = 1.0) -> float:
        """Seconds for one training step on ``local_batch`` samples."""
        if local_batch <= 0:
            raise ValueError("local batch must be positive")
        effective = self.samples_per_second * software_efficiency
        return self.step_overhead_s + local_batch / effective


@dataclass(frozen=True)
class Interconnect:
    """All-reduce fabric: ring all-reduce cost model."""

    name: str
    bandwidth_bytes_per_s: float
    latency_s: float

    def allreduce_time(self, num_chips: int, payload_bytes: float) -> float:
        """Ring all-reduce: ``2 (n-1)/n * S / B + 2 (n-1) * alpha``."""
        if num_chips < 1:
            raise ValueError("need at least one chip")
        if num_chips == 1:
            return 0.0
        n = num_chips
        transfer = 2.0 * (n - 1) / n * payload_bytes / self.bandwidth_bytes_per_s
        latency = 2.0 * (n - 1) * self.latency_s
        return transfer + latency

    def parameter_server_time(self, num_chips: int, payload_bytes: float,
                              num_servers: int = 1) -> float:
        """Centralized parameter-server aggregation (the ablation baseline).

        Every worker pushes its gradient to and pulls parameters from the
        server tier, whose ingress bandwidth is the bottleneck:
        ``2 * S * n / (k * B)`` plus one round-trip of latency.  Unlike the
        ring, per-step time grows linearly with worker count.
        """
        if num_chips < 1:
            raise ValueError("need at least one chip")
        if num_servers < 1:
            raise ValueError("need at least one server")
        if num_chips == 1:
            return 0.0
        transfer = 2.0 * payload_bytes * num_chips / (num_servers * self.bandwidth_bytes_per_s)
        return transfer + 2.0 * self.latency_s


@dataclass(frozen=True)
class SystemConfig:
    """A data-parallel training system."""

    chip: ChipSpec
    num_chips: int
    interconnect: Interconnect
    software_efficiency: float = 1.0

    def with_chips(self, num_chips: int) -> "SystemConfig":
        return replace(self, num_chips=num_chips)

    def with_software_efficiency(self, efficiency: float) -> "SystemConfig":
        return replace(self, software_efficiency=efficiency)
