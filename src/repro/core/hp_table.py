"""Recommended-hyperparameter tables by system scale (§6 future work).

"Future work includes: ... Producing a table that maps system scale and
precision to recommended hyperparameters for each benchmark."

This module implements that feature for the mini suite.  Given a benchmark
spec and a target system scale (chip count), it derives the recommended
Closed-division-legal configuration:

- global batch = chips × per-chip batch (capped at the workload's rule
  limit),
- learning rate via the linear-scaling rule (Goyal et al., cited in §3.4),
- warmup lengthened with the scale factor (large-batch practice),
- the optimizer switched to LARS past a batch threshold, where the
  benchmark allows it (the v0.6 ResNet rule).

Every recommendation is checked against the division rules before being
returned, so the table never suggests an illegal configuration.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..suite.base import BenchmarkSpec
from .rules import check_hyperparameters
from .submission import Division

__all__ = ["HPRecommendation", "recommend_hyperparameters", "recommendation_table"]

# Batch size beyond which plain momentum SGD degrades and LARS is advised
# (relative to the reference batch).
LARS_SCALE_THRESHOLD = 8


@dataclass(frozen=True)
class HPRecommendation:
    """One row of the scale → hyperparameters table."""

    benchmark: str
    num_chips: int
    precision: str
    hyperparameters: dict
    notes: str


def recommend_hyperparameters(
    spec: BenchmarkSpec,
    num_chips: int,
    per_chip_batch: int = 32,
    precision: str = "float32",
    max_global_batch: int | None = None,
) -> HPRecommendation:
    """Derive a Closed-division-legal configuration for a system scale."""
    if num_chips < 1:
        raise ValueError("need at least one chip")
    defaults = dict(spec.default_hyperparameters)
    reference_batch = int(defaults["batch_size"])

    global_batch = num_chips * per_chip_batch
    if max_global_batch is not None:
        global_batch = min(global_batch, max_global_batch)
    scale = global_batch / reference_batch
    hp: dict = {"batch_size": global_batch}
    notes = []

    if "base_lr" in defaults and scale != 1.0:
        hp["base_lr"] = float(defaults["base_lr"]) * scale
        notes.append(f"linear LR scaling x{scale:g}")

    if "warmup_epochs" in defaults and "warmup_epochs" in spec.modifiable_hyperparameters:
        if scale > 2.0:
            hp["warmup_epochs"] = int(defaults["warmup_epochs"]) + 1
            notes.append("extended warmup for large batch")

    if "optimizer" in defaults and "optimizer" in spec.modifiable_hyperparameters:
        if scale >= LARS_SCALE_THRESHOLD:
            hp["optimizer"] = "lars"
            notes.append("LARS past the large-batch threshold")

    merged = spec.resolve_hyperparameters(hp)
    violations = check_hyperparameters(spec, merged, Division.CLOSED)
    if violations:
        raise RuntimeError(
            f"internal error: recommendation violates Closed rules: {violations}"
        )
    return HPRecommendation(
        benchmark=spec.name,
        num_chips=num_chips,
        precision=precision,
        hyperparameters=hp,
        notes="; ".join(notes) or "reference configuration",
    )


def recommendation_table(
    specs: list[BenchmarkSpec],
    chip_counts: tuple[int, ...] = (1, 4, 16, 64),
    precisions: tuple[str, ...] = ("float32", "bfloat16"),
) -> list[HPRecommendation]:
    """The full §6 table: every (benchmark, scale, precision) combination."""
    rows = []
    for spec in specs:
        for chips in chip_counts:
            for precision in precisions:
                rows.append(recommend_hyperparameters(spec, chips, precision=precision))
    return rows


def render_table(rows: list[HPRecommendation]) -> str:
    """Fixed-width rendering of the recommendation table."""
    header = f"{'benchmark':<26}{'chips':>6}  {'precision':<10}{'recommended overrides':<48}{'notes'}"
    lines = [header, "-" * (len(header) + 20)]
    for row in rows:
        hp_text = ", ".join(f"{k}={v:g}" if isinstance(v, float) else f"{k}={v}"
                            for k, v in sorted(row.hyperparameters.items()))
        lines.append(
            f"{row.benchmark:<26}{row.num_chips:>6}  {row.precision:<10}{hp_text:<48}{row.notes}"
        )
    return "\n".join(lines)
