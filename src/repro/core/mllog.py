"""Structured training-session logging (the paper's §4.1 log format).

"A training session log file contains a variety of structured information
including timestamps for important stages of the workload, quality metric
evaluated at prescribed intervals, hyper-parameter choices, and others.
These logs form the foundation for subsequent result analysis."

The format follows the real mlperf-logging package: one line per event,
``:::MLLOG { json }``, with ``key``, ``value``, ``time_ms``, and
``metadata``.  Logs round-trip through text, and the compliance checker
(:mod:`repro.core.review`) operates on parsed events.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator

__all__ = ["LogEvent", "MLLogger", "Keys", "parse_log_lines",
           "iter_log_lines", "iter_log_file"]

_PREFIX = ":::MLLOG "


class Keys:
    """Canonical event keys (subset of the real mlperf-logging constants)."""

    SUBMISSION_BENCHMARK = "submission_benchmark"
    SUBMISSION_DIVISION = "submission_division"
    SUBMISSION_ORG = "submission_org"
    SUBMISSION_PLATFORM = "submission_platform"
    SUBMISSION_STATUS = "submission_status"
    CACHE_CLEAR = "cache_clear"
    INIT_START = "init_start"
    INIT_STOP = "init_stop"
    MODEL_CREATION_START = "model_creation_start"
    MODEL_CREATION_STOP = "model_creation_stop"
    RUN_START = "run_start"
    RUN_STOP = "run_stop"
    EPOCH_START = "epoch_start"
    EPOCH_STOP = "epoch_stop"
    EVAL_START = "eval_start"
    EVAL_STOP = "eval_stop"
    EVAL_ACCURACY = "eval_accuracy"
    HYPERPARAMETER = "hyperparameter"
    SEED = "seed"
    QUALITY_TARGET = "quality_target"
    TARGET_REACHED = "target_reached"
    # Observability keys (mirroring mlperf-logging's throughput/tracked
    # stats): per-epoch rate and free-form per-interval stats dicts.
    THROUGHPUT = "throughput"
    TRACKED_STATS = "tracked_stats"


@dataclass(frozen=True)
class LogEvent:
    """One structured log record."""

    key: str
    value: Any
    time_ms: float
    metadata: dict[str, Any] = field(default_factory=dict)

    def to_line(self) -> str:
        payload = {
            "key": self.key,
            "value": self.value,
            "time_ms": round(self.time_ms, 3),
            "metadata": self.metadata,
        }
        return _PREFIX + json.dumps(payload, sort_keys=True, default=_jsonify)

    @staticmethod
    def from_line(line: str) -> "LogEvent":
        if not line.startswith(_PREFIX):
            raise ValueError(f"not an MLLOG line: {line[:40]!r}")
        payload = json.loads(line[len(_PREFIX):])
        return LogEvent(
            key=payload["key"],
            value=payload.get("value"),
            time_ms=float(payload["time_ms"]),
            metadata=payload.get("metadata", {}),
        )


def _jsonify(obj: Any):
    """JSON fallback for numpy scalars, numpy arrays, and sets."""
    if hasattr(obj, "tolist"):  # ndarray and numpy scalars alike
        return obj.tolist()
    if hasattr(obj, "item"):
        return obj.item()
    if isinstance(obj, (set, frozenset)):
        return sorted(obj)
    raise TypeError(f"unserializable log value of type {type(obj).__name__}")


class MLLogger:
    """Collects :class:`LogEvent` records against a supplied clock.

    ``clock()`` returns seconds; events are stamped in milliseconds like the
    real format.  The logger is deliberately dumb — rule enforcement lives
    in the review stage, mirroring how real submissions are checked
    after the fact.
    """

    def __init__(self, clock):
        self._clock = clock
        self.events: list[LogEvent] = []

    def event(self, key: str, value: Any = None, **metadata: Any) -> LogEvent:
        record = LogEvent(key=key, value=value, time_ms=self._clock() * 1000.0,
                          metadata=dict(metadata))
        self.events.append(record)
        return record

    def hyperparameters(self, hyperparameters: dict[str, Any]) -> None:
        for name, value in sorted(hyperparameters.items()):
            self.event(Keys.HYPERPARAMETER, value=_scrub(value), name=name)

    # -- queries -----------------------------------------------------------
    def find(self, key: str) -> list[LogEvent]:
        return [e for e in self.events if e.key == key]

    def first(self, key: str) -> LogEvent | None:
        for e in self.events:
            if e.key == key:
                return e
        return None

    def last(self, key: str) -> LogEvent | None:
        for e in reversed(self.events):
            if e.key == key:
                return e
        return None

    # -- serialization ---------------------------------------------------------
    def to_lines(self) -> list[str]:
        return [e.to_line() for e in self.events]

    @staticmethod
    def from_lines(lines: list[str]) -> "MLLogger":
        """Parse log lines, skipping non-MLLOG lines like :func:`parse_log_lines`.

        Real result files interleave ``:::MLLOG`` records with free-text
        output (headers, stack traces, launcher chatter); both parsing
        entry points skip that uniformly.
        """
        logger = MLLogger(clock=lambda: 0.0)
        logger.events = [LogEvent.from_line(line) for line in _mllog_lines(lines)]
        return logger


def _scrub(value: Any) -> Any:
    """Make hyperparameter values JSON-representable."""
    if isinstance(value, tuple):
        return list(value)
    if isinstance(value, (frozenset, set)):
        return sorted(value)
    return value


def _mllog_lines(lines) -> list[str]:
    """The subset of ``lines`` that are MLLOG records (whitespace-tolerant)."""
    return [line.strip() for line in lines if line.strip().startswith(_PREFIX)]


def parse_log_lines(text: str) -> list[LogEvent]:
    """Parse a whole log file's text into events, skipping non-MLLOG lines."""
    return [LogEvent.from_line(line) for line in _mllog_lines(text.splitlines())]


def iter_log_lines(lines: Iterable[str]) -> Iterator[LogEvent]:
    """Stream-parse MLLOG records from an iterable of lines.

    The streaming counterpart of :func:`parse_log_lines`, built for logs
    that are still being written (or whose writer was killed): non-MLLOG
    lines are skipped as usual, and a *final* line that starts like a
    record but does not parse — the one artifact a crashed writer can
    leave — is dropped instead of raising.  A malformed MLLOG line in the
    middle of the stream is genuine corruption and still raises.
    """
    pending: str | None = None
    for line in lines:
        stripped = line.strip()
        if not stripped.startswith(_PREFIX):
            continue
        if pending is not None:
            # It had a successor, so it was a complete line: parse strictly.
            yield LogEvent.from_line(pending)
        pending = stripped
    if pending is not None:
        try:
            yield LogEvent.from_line(pending)
        except (json.JSONDecodeError, KeyError, ValueError):
            pass  # truncated tail from a killed writer; tolerated


def iter_log_file(path: str | Path) -> Iterator[LogEvent]:
    """Stream events from a log file on disk, tolerating a truncated tail.

    A missing file is an empty stream — the run may simply not have
    started writing yet.
    """
    path = Path(path)
    if not path.is_file():
        return
    with open(path, encoding="utf-8", errors="replace") as fh:
        yield from iter_log_lines(fh)
