"""Submissions: divisions, categories, system descriptions (§4).

An MLPerf submission consists of a system description, training-session
log files, and the code needed to reproduce them (§4.1).  Labels (§4.2):

- **division**: Closed (workload equivalence, restricted hyperparameters)
  or Open (innovative solutions; same dataset and metric only);
- **category**: Available / Preview / Research, by hardware+software
  availability;
- **system type**: On-Premise or Cloud.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

from .runner import RunResult

__all__ = ["Division", "Category", "SystemType", "SystemDescription", "Submission"]


class Division(enum.Enum):
    """§4.2.1 submission divisions."""

    CLOSED = "closed"
    OPEN = "open"


class Category(enum.Enum):
    """§4.2.2 system categories."""

    AVAILABLE = "available"
    PREVIEW = "preview"
    RESEARCH = "research"


class SystemType(enum.Enum):
    ON_PREMISE = "on_premise"
    CLOUD = "cloud"


@dataclass(frozen=True)
class SystemDescription:
    """Hardware + software description (§4.1).

    "System description includes both the hardware description (number of
    nodes, processor and accelerator counts and types, storage per node,
    network interconnect) and software description (operating system,
    libraries and their versions)."
    """

    submitter: str
    system_name: str
    system_type: SystemType
    num_nodes: int
    processors_per_node: int
    processor_type: str
    accelerators_per_node: int
    accelerator_type: str
    host_memory_gb: float
    interconnect: str
    software_stack: dict[str, str] = field(default_factory=dict)
    # Availability attributes used by category rules (§4.2.2).
    hardware_available: bool = True
    software_versioned_and_supported: bool = True

    @property
    def total_accelerators(self) -> int:
        return self.num_nodes * self.accelerators_per_node

    @property
    def total_processors(self) -> int:
        return self.num_nodes * self.processors_per_node


@dataclass
class Submission:
    """One submitter's entry: system + per-benchmark run sets + code ref."""

    system: SystemDescription
    division: Division
    category: Category
    runs: dict[str, list[RunResult]] = field(default_factory=dict)
    code_url: str = ""
    notes: str = ""

    def add_runs(self, benchmark: str, results: list[RunResult]) -> None:
        self.runs.setdefault(benchmark, []).extend(results)

    def benchmarks(self) -> list[str]:
        return sorted(self.runs)

    def validate_category(self) -> list[str]:
        """Category self-consistency checks (§4.2.2).

        Available requires purchasable/rentable hardware and versioned,
        supported software; Preview/Research carry no such requirement.
        Returns human-readable issues (empty = consistent).
        """
        issues: list[str] = []
        if self.category is Category.AVAILABLE:
            if not self.system.hardware_available:
                issues.append("Available category requires hardware availability")
            if not self.system.software_versioned_and_supported:
                issues.append("Available category requires versioned, supported software")
        return issues
