"""Hyperparameter and equivalence rules (§3.4, §4.2.1).

"MLPERF rules specify the list of modifiable hyperparameters as well as
restrictions to their modification. ... to accommodate a wide range of
training system scales, submissions must be able to adjust the minibatch
size ... other hyper-parameters, such as the learning rate and
optimization schedule, may need to be adjusted to match."

Closed-division policy implemented here:

- Only hyperparameters in the benchmark's modifiable list may differ from
  the reference defaults.
- ``batch_size`` is always modifiable (the Top500-style scale knob).
- The learning rate may be scaled with the batch size (the Goyal et al.
  linear rule the paper cites) — enforced as "base_lr may change only if
  batch_size changed".
- Everything else must be *mathematically equivalent* to the reference:
  equal values for fixed HPs, including the momentum formulation (§2.2.4
  shows the two formulations are not equivalent under LR schedules).

Open-division policy: any hyperparameters and model, but the dataset and
quality metric must match the reference (§4.2.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from ..suite.base import BenchmarkSpec
from .submission import Division

__all__ = ["RuleViolation", "check_hyperparameters", "ALWAYS_MODIFIABLE"]

ALWAYS_MODIFIABLE = frozenset({"batch_size"})


@dataclass(frozen=True)
class RuleViolation:
    """One compliance finding."""

    benchmark: str
    rule: str
    message: str

    def __str__(self) -> str:
        return f"[{self.benchmark}] {self.rule}: {self.message}"


def check_hyperparameters(
    spec: BenchmarkSpec,
    used: Mapping[str, Any],
    division: Division,
) -> list[RuleViolation]:
    """Check a run's hyperparameters against division policy.

    Returns a list of violations (empty = compliant).
    """
    violations: list[RuleViolation] = []
    defaults = dict(spec.default_hyperparameters)

    unknown = set(used) - set(defaults)
    if unknown:
        violations.append(
            RuleViolation(spec.name, "unknown_hyperparameter",
                          f"hyperparameters not in the reference: {sorted(unknown)}")
        )

    if division is Division.OPEN:
        # Open division: HPs are free; only dataset/metric equivalence is
        # checked elsewhere.
        return violations

    modifiable = spec.modifiable_hyperparameters | ALWAYS_MODIFIABLE
    batch_changed = _differs(used.get("batch_size"), defaults.get("batch_size"))
    for name, default in defaults.items():
        if name not in used:
            continue
        if _differs(used[name], default):
            if name in modifiable:
                continue
            if name == "base_lr" and batch_changed:
                # LR scaling with batch size is the sanctioned adjustment.
                continue
            violations.append(
                RuleViolation(
                    spec.name,
                    "fixed_hyperparameter_changed",
                    f"{name} = {used[name]!r} differs from reference {default!r} "
                    f"and is not in the modifiable list",
                )
            )
    return violations


def _differs(a: Any, b: Any) -> bool:
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return list(a) != list(b)
    return a != b
