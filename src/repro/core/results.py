"""Result aggregation: the §3.2.2 scoring rule.

"Five runs are required for vision tasks ... and for all other tasks, ten
runs are required ... The fastest and slowest times are dropped, and the
arithmetic mean of the remaining runs is the result reported by MLPERF."
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .runner import RunResult

__all__ = ["olympic_mean", "BenchmarkScore", "score_runs", "REQUIRED_RUNS_BY_AREA"]

# §3.2.2: run counts by task family.
REQUIRED_RUNS_BY_AREA = {"vision": 5, "language": 10, "commerce": 10, "research": 10}


def olympic_mean(values: list[float]) -> float:
    """Drop the single fastest and slowest values, mean the rest.

    Requires at least 3 values (otherwise nothing remains).  Ties are
    handled by dropping exactly one instance of the min and one of the max.
    """
    arr = sorted(float(v) for v in values)
    if len(arr) < 3:
        raise ValueError(f"need at least 3 runs to drop min and max, got {len(arr)}")
    return float(np.mean(arr[1:-1]))


@dataclass(frozen=True)
class BenchmarkScore:
    """The reported result for one benchmark from one system."""

    benchmark: str
    time_to_train_s: float  # the olympic mean
    num_runs: int
    run_times_s: tuple[float, ...]
    dropped_fastest_s: float
    dropped_slowest_s: float
    mean_epochs: float


def score_runs(runs: list[RunResult], required_runs: int | None = None) -> BenchmarkScore:
    """Apply the §3.2.2 rule to a set of runs of one benchmark.

    All runs must be of the same benchmark and must have reached the
    quality target — a run that never converges cannot be scored.
    """
    if not runs:
        raise ValueError("no runs to score")
    names = {r.benchmark for r in runs}
    if len(names) != 1:
        raise ValueError(f"runs span multiple benchmarks: {sorted(names)}")
    failed = [r.seed for r in runs if not r.reached_target]
    if failed:
        raise ValueError(f"runs with seeds {failed} did not reach the quality target")
    if required_runs is not None and len(runs) != required_runs:
        raise ValueError(f"benchmark requires exactly {required_runs} runs, got {len(runs)}")
    times = sorted(r.time_to_train_s for r in runs)
    return BenchmarkScore(
        benchmark=runs[0].benchmark,
        time_to_train_s=olympic_mean(times),
        num_runs=len(runs),
        run_times_s=tuple(times),
        dropped_fastest_s=times[0],
        dropped_slowest_s=times[-1],
        mean_epochs=float(np.mean([r.epochs for r in runs])),
    )
