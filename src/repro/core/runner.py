"""Run orchestration: execute a benchmark under the timing rules with logging.

The runner drives one training session through the §3.2.1 phase structure,
emitting the §4.1 structured log, and stops the clock the moment an
evaluation meets the quality target.  A :class:`RunResult` carries
everything later stages (aggregation §3.2.2, review §4.1, reporting §4.2)
need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from ..suite.base import Benchmark
from .mllog import Keys, MLLogger
from .timing import Clock, TrainingTimer, WallClock, MODEL_CREATION_EXCLUSION_CAP_S

__all__ = ["RunResult", "BenchmarkRunner"]


@dataclass
class RunResult:
    """Outcome of a single timed training run."""

    benchmark: str
    seed: int
    hyperparameters: dict[str, Any]
    reached_target: bool
    quality: float
    epochs: int
    time_to_train_s: float
    quality_history: list[float] = field(default_factory=list)
    log_lines: list[str] = field(default_factory=list)

    @property
    def epochs_to_target(self) -> int | None:
        return self.epochs if self.reached_target else None


class BenchmarkRunner:
    """Execute benchmark runs under the timing rules.

    Parameters
    ----------
    clock:
        Time source (real by default; fake in tests).
    eval_every:
        Evaluate the quality metric every N epochs ("quality metric
        evaluated at prescribed intervals", §4.1).
    """

    def __init__(self, clock: Clock | None = None, eval_every: int = 1,
                 model_creation_cap_s: float = MODEL_CREATION_EXCLUSION_CAP_S):
        self.clock = clock or WallClock()
        self.eval_every = max(int(eval_every), 1)
        self.model_creation_cap_s = model_creation_cap_s

    def run(
        self,
        benchmark: Benchmark,
        seed: int,
        hyperparameter_overrides: Mapping[str, Any] | None = None,
        max_epochs: int | None = None,
    ) -> RunResult:
        """One full training session: data prep → init → train-to-target."""
        spec = benchmark.spec
        hp = spec.resolve_hyperparameters(hyperparameter_overrides)
        logger = MLLogger(self.clock)
        timer = TrainingTimer(self.clock, self.model_creation_cap_s)

        # Untimed data reformatting (idempotent; usually cached).
        benchmark.prepare_data()

        logger.event(Keys.SUBMISSION_BENCHMARK, spec.name)
        logger.event(Keys.QUALITY_TARGET, spec.quality_threshold)
        logger.event(Keys.SEED, seed)
        logger.hyperparameters(hp)

        timer.init_start()
        logger.event(Keys.INIT_START)
        # (System initialization would go here; it is untimed by rule.)
        timer.init_stop()
        logger.event(Keys.INIT_STOP)

        timer.model_creation_start()
        logger.event(Keys.MODEL_CREATION_START)
        session = benchmark.create_session(seed, hp)
        timer.model_creation_stop()
        logger.event(Keys.MODEL_CREATION_STOP)

        timer.run_start()
        logger.event(Keys.RUN_START)

        cap = max_epochs if max_epochs is not None else spec.max_epochs
        reached = False
        quality = float("-inf")
        history: list[float] = []
        epochs_run = 0
        for epoch in range(1, cap + 1):
            logger.event(Keys.EPOCH_START, epoch, epoch_num=epoch)
            session.run_epoch(epoch - 1)
            logger.event(Keys.EPOCH_STOP, epoch, epoch_num=epoch)
            epochs_run = epoch
            if epoch % self.eval_every == 0 or epoch == cap:
                logger.event(Keys.EVAL_START, epoch_num=epoch)
                quality = float(session.evaluate())
                history.append(quality)
                logger.event(
                    Keys.EVAL_ACCURACY, quality, epoch_num=epoch, **session.eval_details()
                )
                logger.event(Keys.EVAL_STOP, epoch_num=epoch)
                if quality >= spec.quality_threshold:
                    reached = True
                    break

        timer.run_stop()
        logger.event(Keys.RUN_STOP, status="success" if reached else "aborted")
        logger.event(Keys.TARGET_REACHED, reached)

        return RunResult(
            benchmark=spec.name,
            seed=seed,
            hyperparameters=dict(hp),
            reached_target=reached,
            quality=quality,
            epochs=epochs_run,
            time_to_train_s=timer.time_to_train(),
            quality_history=history,
            log_lines=logger.to_lines(),
        )
