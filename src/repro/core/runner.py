"""Run orchestration: execute a benchmark under the timing rules with logging.

The runner drives one training session through the §3.2.1 phase structure,
emitting the §4.1 structured log, and stops the clock the moment an
evaluation meets the quality target.  A :class:`RunResult` carries
everything later stages (aggregation §3.2.2, review §4.1, reporting §4.2)
need — including the full :class:`~repro.core.timing.TimingBreakdown` and,
when a :class:`~repro.telemetry.Telemetry` session is attached, a trace /
metrics snapshot for per-phase profiling.

A run that raises mid-training does not leave the timing state machine
stuck: the timer is aborted (closing every open interval at the failure
instant), a ``run_stop`` event with ``status="error"`` is logged, and the
exception is re-raised as :class:`RunFailure` carrying the partial log so
failures stay auditable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from ..suite.base import Benchmark
from ..telemetry import RunSeries, RunTelemetry, Telemetry
from .mllog import Keys, MLLogger
from .timing import Clock, TimingBreakdown, TrainingTimer, WallClock, \
    MODEL_CREATION_EXCLUSION_CAP_S

__all__ = ["RunResult", "RunFailure", "RunTimeout", "BenchmarkRunner"]


@dataclass
class RunResult:
    """Outcome of a single timed training run."""

    benchmark: str
    seed: int
    hyperparameters: dict[str, Any]
    reached_target: bool
    quality: float
    epochs: int
    time_to_train_s: float
    quality_history: list[float] = field(default_factory=list)
    log_lines: list[str] = field(default_factory=list)
    breakdown: TimingBreakdown | None = None
    telemetry: RunTelemetry | None = None
    # Trained parameters exported by the session (name -> ndarray), so the
    # artifact can rehydrate the model for serving; None when the session
    # has nothing to export.
    model_state: dict[str, Any] | None = None

    @property
    def epochs_to_target(self) -> int | None:
        return self.epochs if self.reached_target else None


class RunTimeout(RuntimeError):
    """A run exceeded its per-job deadline.

    Raised cooperatively from inside the epoch loop so it travels the
    normal failure path: the timer is aborted (every open interval closed
    at the timeout instant) and the run surfaces as a :class:`RunFailure`
    whose ``cause`` is this exception.  The campaign engine classifies it
    separately from other faults — a deterministic run that timed out once
    will time out again, so timeouts are terminal, not retried.
    """


class RunFailure(RuntimeError):
    """A training session raised mid-run; the partial observability record
    (log lines, finalized timing, telemetry snapshot) rides along so the
    failure can be analyzed exactly like a successful run."""

    def __init__(self, benchmark: str, seed: int, cause: BaseException,
                 log_lines: list[str], breakdown: TimingBreakdown | None = None,
                 telemetry: RunTelemetry | None = None):
        super().__init__(
            f"run of {benchmark!r} (seed {seed}) failed: "
            f"{type(cause).__name__}: {cause}"
        )
        self.benchmark = benchmark
        self.seed = seed
        self.cause = cause
        self.log_lines = log_lines
        self.breakdown = breakdown
        self.telemetry = telemetry

    def summary(self) -> str:
        """Multi-line human-readable failure report (cause + phase breakdown)."""
        lines = [
            f"run FAILED: benchmark={self.benchmark} seed={self.seed}",
            f"  cause: {type(self.cause).__name__}: {self.cause}",
        ]
        if self.breakdown is not None:
            b = self.breakdown
            lines.append(
                f"  phases: init={b.init_seconds:.3f}s "
                f"create={b.model_creation_seconds:.3f}s "
                f"run={b.run_seconds:.3f}s (aborted={b.aborted})"
            )
        return "\n".join(lines)


class BenchmarkRunner:
    """Execute benchmark runs under the timing rules.

    Parameters
    ----------
    clock:
        Time source (real by default; fake in tests).
    eval_every:
        Evaluate the quality metric every N epochs ("quality metric
        evaluated at prescribed intervals", §4.1).
    telemetry:
        Default observability session for runs; disabled (no-op) when
        omitted.  Individual :meth:`run` calls may override it, e.g. to
        give each seeded run its own tracer.
    """

    def __init__(self, clock: Clock | None = None, eval_every: int = 1,
                 model_creation_cap_s: float = MODEL_CREATION_EXCLUSION_CAP_S,
                 telemetry: Telemetry | None = None):
        self.clock = clock or WallClock()
        self.eval_every = max(int(eval_every), 1)
        self.model_creation_cap_s = model_creation_cap_s
        self.telemetry = telemetry

    def run(
        self,
        benchmark: Benchmark,
        seed: int,
        hyperparameter_overrides: Mapping[str, Any] | None = None,
        max_epochs: int | None = None,
        telemetry: Telemetry | None = None,
        deadline_s: float | None = None,
    ) -> RunResult:
        """One full training session: data prep → init → train-to-target.

        ``deadline_s`` is a per-run wall-clock budget (measured on this
        runner's clock from the start of the call).  It is checked
        cooperatively at epoch boundaries: crossing it raises
        :class:`RunTimeout` through the normal failure path, so the timer
        is aborted cleanly and the partial record stays auditable.
        """
        spec = benchmark.spec
        hp = spec.resolve_hyperparameters(hyperparameter_overrides)
        logger = MLLogger(self.clock)
        timer = TrainingTimer(self.clock, self.model_creation_cap_s)
        tele = telemetry or self.telemetry or Telemetry.disabled()
        deadline = None if deadline_s is None else self.clock.now() + float(deadline_s)

        # Untimed data reformatting (idempotent; usually cached).
        benchmark.prepare_data()

        logger.event(Keys.SUBMISSION_BENCHMARK, spec.name)
        logger.event(Keys.QUALITY_TARGET, spec.quality_threshold)
        logger.event(Keys.SEED, seed)
        logger.hyperparameters(hp)

        series = RunSeries() if tele.enabled else None
        with tele.activate():
            try:
                reached, quality, history, epochs_run, model_state = self._execute(
                    benchmark, spec, seed, hp, max_epochs, logger, timer, tele,
                    deadline, series,
                )
            except Exception as exc:
                if timer.state not in ("stopped", "aborted"):
                    timer.abort()
                logger.event(Keys.RUN_STOP, status="error", error=type(exc).__name__)
                tele.events.publish("run_stop", benchmark=spec.name, seed=seed,
                                    status="error", error=type(exc).__name__)
                # Flush the trace before snapshotting: open spans don't
                # export, so close anything the unwind didn't reach — a
                # failed run must still leave a loadable partial trace.
                tele.tracer.abort_open(error=type(exc).__name__)
                raise RunFailure(
                    spec.name, seed, exc,
                    log_lines=logger.to_lines(),
                    breakdown=timer.breakdown(),
                    telemetry=self._snapshot(tele, series),
                ) from exc

        return RunResult(
            benchmark=spec.name,
            seed=seed,
            hyperparameters=dict(hp),
            reached_target=reached,
            quality=quality,
            epochs=epochs_run,
            time_to_train_s=timer.time_to_train(),
            quality_history=history,
            log_lines=logger.to_lines(),
            breakdown=timer.breakdown(),
            telemetry=self._snapshot(tele, series),
            model_state=model_state,
        )

    def _execute(self, benchmark, spec, seed, hp, max_epochs, logger, timer, tele,
                 deadline=None, series=None):
        """The §3.2.1 phase sequence, instrumented with spans and metrics."""
        tracer = tele.tracer
        metrics = tele.metrics
        events = tele.events
        samples = metrics.counter("samples_seen")

        with tracer.span(f"run:{spec.name}", seed=seed):
            timer.init_start()
            logger.event(Keys.INIT_START)
            with tracer.span("init"):
                pass  # system initialization would go here; untimed by rule
            timer.init_stop()
            logger.event(Keys.INIT_STOP)

            timer.model_creation_start()
            logger.event(Keys.MODEL_CREATION_START)
            with tracer.span("model_creation"):
                session = benchmark.create_session(seed, hp)
            timer.model_creation_stop()
            logger.event(Keys.MODEL_CREATION_STOP)

            timer.run_start()
            logger.event(Keys.RUN_START)
            events.publish("run_start", benchmark=spec.name, seed=seed,
                           target=spec.quality_threshold)
            run_t0 = self.clock.now()

            cap = max_epochs if max_epochs is not None else spec.max_epochs
            reached = False
            quality = float("-inf")
            history: list[float] = []
            epochs_run = 0
            # The session may hold external resources (worker pools, shared
            # memory); release them however the run ends.
            try:
                for epoch in range(1, cap + 1):
                    if deadline is not None and self.clock.now() >= deadline:
                        raise RunTimeout(
                            f"{spec.name} (seed {seed}) exceeded its per-job "
                            f"deadline after {epochs_run} epochs"
                        )
                    logger.event(Keys.EPOCH_START, epoch, epoch_num=epoch)
                    epoch_t0 = self.clock.now()
                    samples_before = samples.value
                    with tracer.span("epoch", epoch_num=epoch):
                        session.run_epoch(epoch - 1)
                    epoch_dt = self.clock.now() - epoch_t0
                    epoch_samples = samples.value - samples_before
                    logger.event(Keys.EPOCH_STOP, epoch, epoch_num=epoch)
                    metrics.histogram("epoch_seconds").observe(epoch_dt)
                    metrics.counter("epochs").inc()
                    stats = {"epoch_seconds": epoch_dt}
                    if epoch_samples:
                        stats["samples"] = epoch_samples
                    logger.event(Keys.TRACKED_STATS, stats, epoch_num=epoch)
                    eps = None
                    if epoch_dt > 0 and epoch_samples > 0:
                        eps = epoch_samples / epoch_dt
                        metrics.gauge("examples_per_second").set(eps)
                        logger.event(Keys.THROUGHPUT, eps, epoch_num=epoch)
                    events.publish("epoch", epoch=epoch,
                                   epoch_seconds=epoch_dt,
                                   samples=epoch_samples,
                                   samples_total=samples.value)
                    if series is not None:
                        self._sample_series(series, metrics, epoch,
                                            self.clock.now() - run_t0,
                                            epoch_dt, eps)
                    epochs_run = epoch
                    # Sampling-window boundary AFTER the epoch (no-op when
                    # off): the always-on window 0 then covers the first
                    # epoch, so sampled mode records ops even on runs
                    # shorter than one full sampling period.
                    tele.profiler.step()
                    if epoch % self.eval_every == 0 or epoch == cap:
                        logger.event(Keys.EVAL_START, epoch_num=epoch)
                        eval_t0 = self.clock.now()
                        with tracer.span("eval", epoch_num=epoch):
                            quality = float(session.evaluate())
                        metrics.histogram("eval_seconds").observe(self.clock.now() - eval_t0)
                        history.append(quality)
                        logger.event(
                            Keys.EVAL_ACCURACY, quality, epoch_num=epoch,
                            **session.eval_details()
                        )
                        logger.event(Keys.EVAL_STOP, epoch_num=epoch)
                        events.publish("eval", epoch=epoch, quality=quality)
                        if series is not None:
                            series.record("eval_quality", quality,
                                          t_s=self.clock.now() - run_t0,
                                          epoch=epoch)
                        if quality >= spec.quality_threshold:
                            reached = True
                            break
                # Export the trained parameters before the session releases
                # its resources — failed runs skip this (nothing servable).
                model_state = session.export_state()
            finally:
                session.close()

            timer.run_stop()
            logger.event(Keys.RUN_STOP, status="success" if reached else "aborted")
            logger.event(Keys.TARGET_REACHED, reached)
            events.publish("run_stop", benchmark=spec.name, seed=seed,
                           status="success" if reached else "aborted",
                           epochs=epochs_run, quality=quality)
        return reached, quality, history, epochs_run, model_state

    @staticmethod
    def _sample_series(series, metrics, epoch: int, t_s: float,
                       epoch_dt: float, eps: float | None) -> None:
        """One epoch-boundary sample of every standard series.

        Arena and all-reduce instruments exist only when the run exercised
        those subsystems; sampling is conditional on presence so runs that
        never touch them carry no empty series.
        """
        series.record("epoch_seconds", epoch_dt, t_s=t_s, epoch=epoch)
        if eps is not None:
            series.record("examples_per_second", eps, t_s=t_s, epoch=epoch)
        if "kernel_arena_hit_rate" in metrics:
            series.record("kernel_arena_hit_rate",
                          metrics.gauge("kernel_arena_hit_rate").value,
                          t_s=t_s, epoch=epoch)
        if "allreduce_bytes" in metrics:
            series.record("allreduce_bytes",
                          metrics.counter("allreduce_bytes").value,
                          t_s=t_s, epoch=epoch)

    @staticmethod
    def _snapshot(tele: Telemetry, series=None) -> RunTelemetry | None:
        if not tele.enabled:
            return None
        return RunTelemetry(
            trace_events=tele.tracer.chrome_events(),
            metrics=tele.metrics.snapshot(),
            series=series.to_payload() if series else {},
            op_profile=tele.profiler.snapshot(),
        )
