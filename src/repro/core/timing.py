"""The time-to-train metric and its timing rules (§3.2).

Timing begins "when any training or validation data is touched" and stops
"when the defined quality target has been achieved on the validation
dataset".  Excluded from timing (§3.2.1):

- **system initialization** — everything before the init/run boundary;
- **model creation and initialization** — excludable *up to a cap* ("we
  allow excluding up to 20 minutes of model creation time"); creation time
  beyond the cap counts against the submission;
- **data reformatting** — one-time dataset preparation done before init.

``Clock`` abstracts wall time so the rules are unit-testable with a fake
clock and usable with real ``time.perf_counter`` in actual runs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

__all__ = ["Clock", "WallClock", "FakeClock", "TrainingTimer", "TimingBreakdown",
           "MODEL_CREATION_EXCLUSION_CAP_S"]

# The paper's cap is 20 minutes on datacenter-scale runs.  Our runs are
# ~10^3 times shorter, so the cap scales likewise: 1.2 seconds.  The *rule*
# (exclusion capped; overflow is timed) is what we reproduce; the constant
# is configurable per-timer.
MODEL_CREATION_EXCLUSION_CAP_S = 1.2


class Clock:
    """Time source; subclasses supply ``now() -> seconds``."""

    def now(self) -> float:
        raise NotImplementedError

    def __call__(self) -> float:
        return self.now()


class WallClock(Clock):
    def now(self) -> float:
        return time.perf_counter()


class FakeClock(Clock):
    """Deterministic clock for tests: advance explicitly."""

    def __init__(self, start: float = 0.0):
        self.t = float(start)

    def now(self) -> float:
        return self.t

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("cannot go back in time")
        self.t += seconds


@dataclass
class TimingBreakdown:
    """Every interval the timer observed, for reporting and auditing."""

    init_seconds: float
    model_creation_seconds: float
    excluded_model_creation_seconds: float
    run_seconds: float
    time_to_train_seconds: float
    aborted: bool = False


class TrainingTimer:
    """State machine enforcing the §3.2.1 phase structure.

    Phases must be entered in order::

        init_start -> init_stop -> model_creation_start ->
        model_creation_stop -> run_start -> ... -> run_stop

    ``time_to_train`` = (run_stop - run_start)
                        + max(model_creation - cap, 0).

    A run that fails mid-phase calls :meth:`abort`, which closes every
    open interval at the failure instant so the timing record stays
    finalizable (and auditable) instead of stuck mid-state.
    """

    _ORDER = ["created", "init", "ready", "model_creation", "armed", "running", "stopped"]

    # The mark each in-flight state is waiting on, in phase order; abort()
    # stamps all of the remaining ones with the failure time.
    _PENDING_MARKS = {
        "created": ["init_start", "init_stop", "model_creation_start",
                    "model_creation_stop", "run_start", "run_stop"],
        "init": ["init_stop", "model_creation_start", "model_creation_stop",
                 "run_start", "run_stop"],
        "ready": ["model_creation_start", "model_creation_stop", "run_start", "run_stop"],
        "model_creation": ["model_creation_stop", "run_start", "run_stop"],
        "armed": ["run_start", "run_stop"],
        "running": ["run_stop"],
    }

    def __init__(self, clock: Clock, model_creation_cap_s: float = MODEL_CREATION_EXCLUSION_CAP_S):
        self.clock = clock
        self.cap = float(model_creation_cap_s)
        self.state = "created"
        self._marks: dict[str, float] = {}

    def _advance(self, expected: str, new_state: str, mark: str) -> None:
        if self.state != expected:
            raise RuntimeError(
                f"timing rule violation: {mark} while in state {self.state!r} "
                f"(expected {expected!r})"
            )
        self._marks[mark] = self.clock.now()
        self.state = new_state

    def init_start(self) -> None:
        """Begin (untimed) system initialization."""
        self._advance("created", "init", "init_start")

    def init_stop(self) -> None:
        self._advance("init", "ready", "init_stop")

    def model_creation_start(self) -> None:
        """Begin model creation (excludable up to the cap)."""
        self._advance("ready", "model_creation", "model_creation_start")

    def model_creation_stop(self) -> None:
        self._advance("model_creation", "armed", "model_creation_stop")

    def run_start(self) -> None:
        """First touch of training/validation data — timing begins."""
        self._advance("armed", "running", "run_start")

    def run_stop(self) -> None:
        """Quality target achieved — timing ends."""
        self._advance("running", "stopped", "run_stop")

    def abort(self) -> None:
        """Finalize a failed run: close every open interval at *now*.

        Any phase still pending gets a zero-length interval stamped at the
        failure time, so :meth:`time_to_train` and :meth:`breakdown` stay
        computable (the breakdown is marked ``aborted``).  Aborting a run
        that already stopped is an error — its timing record is final.
        """
        if self.state in ("stopped", "aborted"):
            raise RuntimeError(f"cannot abort a run in state {self.state!r}")
        now = self.clock.now()
        for mark in self._PENDING_MARKS[self.state]:
            self._marks[mark] = now
        self.state = "aborted"

    @property
    def model_creation_seconds(self) -> float:
        return self._marks["model_creation_stop"] - self._marks["model_creation_start"]

    def time_to_train(self) -> float:
        """The scored metric, per the exclusion rules."""
        if self.state not in ("stopped", "aborted"):
            raise RuntimeError("run has not stopped; no time-to-train yet")
        run = self._marks["run_stop"] - self._marks["run_start"]
        overflow = max(self.model_creation_seconds - self.cap, 0.0)
        return run + overflow

    def breakdown(self) -> TimingBreakdown:
        if self.state not in ("stopped", "aborted"):
            raise RuntimeError("run has not stopped; no breakdown yet")
        creation = self.model_creation_seconds
        return TimingBreakdown(
            init_seconds=self._marks["init_stop"] - self._marks["init_start"],
            model_creation_seconds=creation,
            excluded_model_creation_seconds=min(creation, self.cap),
            run_seconds=self._marks["run_stop"] - self._marks["run_start"],
            time_to_train_seconds=self.time_to_train(),
            aborted=self.state == "aborted",
        )
