"""Scale reporting: the cloud scale metric (§4.2.3).

"For cloud systems, a cloud scale metric was derived from: 1) number of
host processors, 2) amount of host memory, and 3) number and type of
accelerators. We empirically verified that cloud scale correlates closely
with cost across three major cloud providers."

The metric is a weighted sum of those three components, with accelerator
weights reflecting relative device capability.  The §4.2.3 bench validates
the correlation claim against synthetic provider price sheets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .submission import SystemDescription, SystemType

__all__ = ["ACCELERATOR_WEIGHTS", "cloud_scale", "correlation_with_cost", "ScaleReport"]

# Relative capability weights by accelerator type (arbitrary units; the
# ratios, not the absolute values, carry meaning).
ACCELERATOR_WEIGHTS = {
    "none": 0.0,
    "gpu-small": 1.0,
    "gpu-large": 2.5,
    "tpu-core": 2.0,
    "accel-x": 3.0,
}

_HOST_PROCESSOR_WEIGHT = 0.25
_HOST_MEMORY_WEIGHT_PER_GB = 0.004


def cloud_scale(
    host_processors: int,
    host_memory_gb: float,
    num_accelerators: int,
    accelerator_type: str,
) -> float:
    """The cloud scale metric: weighted host CPUs + memory + accelerators."""
    try:
        accel_weight = ACCELERATOR_WEIGHTS[accelerator_type]
    except KeyError:
        raise KeyError(
            f"unknown accelerator type {accelerator_type!r}; "
            f"known: {sorted(ACCELERATOR_WEIGHTS)}"
        ) from None
    return (
        _HOST_PROCESSOR_WEIGHT * host_processors
        + _HOST_MEMORY_WEIGHT_PER_GB * host_memory_gb
        + accel_weight * num_accelerators
    )


def system_cloud_scale(system: SystemDescription) -> float:
    """Cloud scale of a described system (cloud systems only)."""
    if system.system_type is not SystemType.CLOUD:
        raise ValueError("cloud scale is defined for cloud systems only (§4.2.3)")
    return cloud_scale(
        system.total_processors,
        system.host_memory_gb * system.num_nodes,
        system.total_accelerators,
        system.accelerator_type,
    )


def correlation_with_cost(scales: list[float], prices: list[float]) -> float:
    """Pearson correlation between cloud scale and provider price."""
    if len(scales) != len(prices) or len(scales) < 2:
        raise ValueError("need two aligned samples at least")
    return float(np.corrcoef(scales, prices)[0, 1])


@dataclass(frozen=True)
class ScaleReport:
    """Scale info reported alongside scores (optional in v0.5/v0.6)."""

    num_processors: int
    num_accelerators: int
    cloud_scale: float | None = None
