"""Reference convergence points (RCP): convergence-plausibility review.

An extension of the §4.1 review in the spirit the MLPerf organization
later adopted: a submission whose runs converge in *far fewer* epochs than
the reference implementation ever does (across seeds, at comparable batch
size) is suspect — it likely changed the learning dynamics in a way the
Closed division forbids, even if every listed hyperparameter looks legal.

The check: record the reference's epochs-to-target distribution over
seeds; a submission's mean epochs must not fall below
``tolerance × min(reference epochs)``.  Converging *slower* is always
acceptable (it only hurts the submitter's score).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .rules import RuleViolation
from .runner import RunResult

__all__ = ["ReferenceConvergencePoints", "collect_reference_points", "check_convergence"]


@dataclass(frozen=True)
class ReferenceConvergencePoints:
    """Reference epochs-to-target statistics for one benchmark."""

    benchmark: str
    batch_size: int
    epochs: tuple[int, ...]

    @property
    def min_epochs(self) -> int:
        return min(self.epochs)

    @property
    def mean_epochs(self) -> float:
        return float(np.mean(self.epochs))


def collect_reference_points(benchmark, seeds: range | list[int],
                             runner=None) -> ReferenceConvergencePoints:
    """Run the reference implementation across seeds to establish RCPs."""
    from .runner import BenchmarkRunner

    runner = runner or BenchmarkRunner()
    epochs = []
    for seed in seeds:
        result = runner.run(benchmark, seed=seed)
        if not result.reached_target:
            raise RuntimeError(
                f"reference run (seed {seed}) failed to converge; cannot set RCPs"
            )
        epochs.append(result.epochs)
    return ReferenceConvergencePoints(
        benchmark=benchmark.spec.name,
        batch_size=int(benchmark.spec.default_hyperparameters["batch_size"]),
        epochs=tuple(epochs),
    )


def check_convergence(
    runs: list[RunResult],
    reference: ReferenceConvergencePoints,
    tolerance: float = 0.7,
) -> list[RuleViolation]:
    """Flag submissions converging implausibly faster than the reference.

    Applies only when the submission ran at the reference batch size
    (different batch sizes legitimately change epochs-to-target, §2.2.2).
    """
    if not runs:
        return []
    violations: list[RuleViolation] = []
    batch_sizes = {r.hyperparameters.get("batch_size") for r in runs}
    if batch_sizes != {reference.batch_size}:
        return []  # not comparable; the hyperparameter rules govern instead
    converged = [r.epochs for r in runs if r.reached_target]
    if not converged:
        return []
    mean_epochs = float(np.mean(converged))
    floor = tolerance * reference.min_epochs
    if mean_epochs < floor:
        violations.append(
            RuleViolation(
                reference.benchmark,
                "convergence_plausibility",
                f"mean epochs-to-target {mean_epochs:.2f} is below "
                f"{tolerance:.0%} of the reference minimum "
                f"({reference.min_epochs}); learning dynamics likely differ "
                f"from the reference",
            )
        )
    return violations
