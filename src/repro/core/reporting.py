"""Results reporting (§4.2.4).

"MLPERF results report provides the time to train metric for each
benchmark in a given submission. While a single summary score ... may be
desired ... a summary score is not appropriate for MLPERF": there is no
universally representative weighting across application areas, and systems
legitimately omit benchmarks.  Accordingly this module renders
per-benchmark scores only, and :func:`summary_score` exists solely to
refuse — with the paper's rationale — so the design decision is executable
and testable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..telemetry import decompose_log_events
from .mllog import parse_log_lines
from .results import BenchmarkScore, score_runs
from .runner import RunResult
from .scaling import ScaleReport, system_cloud_scale
from .submission import Submission, SystemType

__all__ = ["ResultsRow", "ResultsReport", "build_report", "summary_score",
           "SummaryScoreRefused", "PhaseRow", "build_phase_table",
           "render_phase_table", "CampaignSummary", "render_campaign_summary"]


class SummaryScoreRefused(RuntimeError):
    """Raised by :func:`summary_score`, by design."""


def summary_score(report: "ResultsReport") -> float:
    """MLPerf does not define a summary score (§4.2.4); this always raises."""
    raise SummaryScoreRefused(
        "MLPerf reports per-benchmark time-to-train only: a summary score "
        "implies a universal weighting across application areas (none exists) "
        "and becomes meaningless when a system omits benchmarks (§4.2.4)."
    )


@dataclass(frozen=True)
class ResultsRow:
    """One (system, benchmark) score with its scale context."""

    submitter: str
    system_name: str
    division: str
    category: str
    benchmark: str
    time_to_train_s: float
    num_runs: int
    scale: ScaleReport


@dataclass
class ResultsReport:
    """The published results table for a round."""

    rows: list[ResultsRow] = field(default_factory=list)

    def for_benchmark(self, benchmark: str) -> list[ResultsRow]:
        return sorted(
            (r for r in self.rows if r.benchmark == benchmark),
            key=lambda r: r.time_to_train_s,
        )

    def fastest(self, benchmark: str) -> ResultsRow | None:
        ranked = self.for_benchmark(benchmark)
        return ranked[0] if ranked else None

    def render(self) -> str:
        header = (
            f"{'Submitter':<12}{'System':<16}{'Div':<8}{'Benchmark':<26}"
            f"{'TTT (s)':>10}{'Runs':>6}{'Procs':>7}{'Accels':>7}"
        )
        lines = [header, "-" * len(header)]
        for row in sorted(self.rows, key=lambda r: (r.benchmark, r.time_to_train_s)):
            lines.append(
                f"{row.submitter:<12}{row.system_name:<16}{row.division:<8}"
                f"{row.benchmark:<26}{row.time_to_train_s:>10.3f}{row.num_runs:>6}"
                f"{row.scale.num_processors:>7}{row.scale.num_accelerators:>7}"
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class PhaseRow:
    """Mean per-phase wall-clock for one benchmark's runs (DAWNBench-style).

    ``init``/``model_creation``/``time_to_train`` come from the timing
    state machine's :class:`~repro.core.timing.TimingBreakdown` when the
    run carries one; ``train``/``eval`` decompose the timed region from
    the structured log's paired epoch/eval events.  ``other`` is run time
    inside neither (loop and logging overhead).
    """

    benchmark: str
    num_runs: int
    init_s: float
    model_creation_s: float
    train_s: float
    eval_s: float
    other_s: float
    time_to_train_s: float
    # Mean all-reduce traffic per run (0 when the run carries no
    # telemetry or used no data-parallel engine).
    allreduce_elements: float = 0.0
    allreduce_bytes: float = 0.0


def _decompose_run(run: RunResult):
    phases = decompose_log_events(parse_log_lines("\n".join(run.log_lines)))
    if run.breakdown is not None:
        init = run.breakdown.init_seconds
        creation = run.breakdown.model_creation_seconds
        ttt = run.breakdown.time_to_train_seconds
    else:  # runs loaded from pre-breakdown artifacts fall back to the log
        init = phases.init_s
        creation = phases.model_creation_s
        ttt = run.time_to_train_s
    return init, creation, phases.train_s, phases.eval_s, phases.other_s, ttt


def _allreduce_counter(run: RunResult, name: str) -> float:
    if run.telemetry is None or not run.telemetry.metrics:
        return 0.0
    inst = run.telemetry.metrics.get(name)
    if not inst or inst.get("type") != "counter":
        return 0.0
    return float(inst["value"])


def build_phase_table(runs_by_benchmark: dict[str, list[RunResult]]) -> list[PhaseRow]:
    """Aggregate per-run phase decompositions into per-benchmark means."""
    rows = []
    for benchmark, runs in sorted(runs_by_benchmark.items()):
        if not runs:
            continue
        parts = [_decompose_run(r) for r in runs]
        means = [sum(p[i] for p in parts) / len(parts) for i in range(6)]
        elements = sum(_allreduce_counter(r, "allreduce_elements") for r in runs) / len(runs)
        nbytes = sum(_allreduce_counter(r, "allreduce_bytes") for r in runs) / len(runs)
        rows.append(PhaseRow(benchmark, len(runs), *means,
                             allreduce_elements=elements, allreduce_bytes=nbytes))
    return rows


def _human_count(value: float) -> str:
    """Compact counts for the table: 0 -> '-', 1.5e6 -> '1.5M'."""
    if value <= 0:
        return "-"
    for scale, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "K")):
        if value >= scale:
            return f"{value / scale:.1f}{suffix}"
    return f"{value:.0f}"


def render_phase_table(rows: list[PhaseRow]) -> str:
    """The ``repro stats`` table: where each benchmark's wall-clock goes."""
    header = (
        f"{'Benchmark':<26}{'Runs':>6}{'Init':>9}{'Create':>9}{'Train':>9}"
        f"{'Eval':>9}{'Other':>9}{'TTT (s)':>10}{'Train%':>8}"
        f"{'AllRed el':>11}{'AllRed B':>10}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        timed = row.train_s + row.eval_s + row.other_s
        train_pct = 100.0 * row.train_s / timed if timed > 0 else 0.0
        lines.append(
            f"{row.benchmark:<26}{row.num_runs:>6}{row.init_s:>9.3f}"
            f"{row.model_creation_s:>9.3f}{row.train_s:>9.3f}{row.eval_s:>9.3f}"
            f"{row.other_s:>9.3f}{row.time_to_train_s:>10.3f}{train_pct:>7.1f}%"
            f"{_human_count(row.allreduce_elements):>11}"
            f"{_human_count(row.allreduce_bytes):>10}"
        )
    return "\n".join(lines)


@dataclass(frozen=True)
class CampaignSummary:
    """What a campaign did, operationally: the execution engine's report card.

    ``speedup`` is the parallel-efficiency headline — the sum of every
    executed run's time-to-train over the campaign's wall-clock.  A
    sequential executor sits near 1.0 (TTT excludes untimed phases, so it
    can dip below); ``--jobs N`` should push it toward N.
    """

    benchmarks: tuple[str, ...]
    total_cells: int
    executed: int
    skipped_resumed: int
    reached: int
    quality_misses: int
    faults: int
    timeouts: int
    retries: int
    wall_clock_s: float
    total_ttt_s: float

    @property
    def speedup(self) -> float:
        return self.total_ttt_s / self.wall_clock_s if self.wall_clock_s > 0 else 0.0

    @property
    def failed(self) -> int:
        """Cells that ended without a result (faults + timeouts)."""
        return self.faults + self.timeouts


def render_campaign_summary(
    summary: CampaignSummary,
    scores: dict[str, BenchmarkScore] | None = None,
    unscored: dict[str, str] | None = None,
) -> str:
    """The ``repro campaign`` closing report: job accounting plus scores."""
    lines = [
        f"campaign: {len(summary.benchmarks)} benchmark(s), "
        f"{summary.total_cells} (benchmark, seed) cells",
        f"  jobs: executed={summary.executed} resumed={summary.skipped_resumed} "
        f"reached={summary.reached} quality_miss={summary.quality_misses} "
        f"faults={summary.faults} timeouts={summary.timeouts} "
        f"retries={summary.retries}",
        f"  wall-clock {summary.wall_clock_s:.3f}s vs sum-of-TTT "
        f"{summary.total_ttt_s:.3f}s (speedup {summary.speedup:.2f}x)",
    ]
    if scores:
        lines.append("scores (olympic mean):")
        for benchmark, score in sorted(scores.items()):
            lines.append(
                f"  {benchmark:<26} ttt={score.time_to_train_s:>10.3f}s "
                f"runs={score.num_runs}"
            )
    for benchmark, reason in sorted((unscored or {}).items()):
        lines.append(f"  {benchmark:<26} UNSCORED: {reason}")
    return "\n".join(lines)


def build_report(submissions: list[Submission]) -> ResultsReport:
    """Score every submission's runs and assemble the results table.

    Run-count compliance is review's job (:mod:`repro.core.review`); here
    the olympic mean just needs enough runs to be defined.  Scale is
    reported alongside scores (§4.2.3): processor/accelerator counts
    always, cloud scale for cloud systems.
    """
    report = ResultsReport()
    for sub in submissions:
        scale = ScaleReport(
            num_processors=sub.system.total_processors,
            num_accelerators=sub.system.total_accelerators,
            cloud_scale=(
                system_cloud_scale(sub.system)
                if sub.system.system_type is SystemType.CLOUD
                else None
            ),
        )
        for benchmark, runs in sorted(sub.runs.items()):
            score: BenchmarkScore = score_runs(runs)
            report.rows.append(
                ResultsRow(
                    submitter=sub.system.submitter,
                    system_name=sub.system.system_name,
                    division=sub.division.value,
                    category=sub.category.value,
                    benchmark=benchmark,
                    time_to_train_s=score.time_to_train_s,
                    num_runs=score.num_runs,
                    scale=scale,
                )
            )
    return report
