"""Suite versioning: the working-group update process (§4, §6).

"Since machine learning is an evolving field, MLPERF established a process
to maintain and update the benchmark suite over time. For example, MLPERF
v0.6 round included a number of updates: ResNet-50 benchmark added the use
of LARS optimizer ...; GNMT model architecture was improved ...; As a
result of these enhancements target thresholds were increased."

A :class:`SuiteVersion` is an ordered set of :class:`SpecChange` patches
over the previous round's specs.  Changes are typed (threshold raise,
newly-modifiable hyperparameter, default-HP change) so the changelog is
auditable, and applying a version yields new immutable specs — old
submissions can be re-validated against the round they were made in.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any

from ..suite.base import BenchmarkSpec

__all__ = ["SpecChange", "SuiteVersion", "V06_CHANGES", "apply_version"]


@dataclass(frozen=True)
class SpecChange:
    """One typed change to one benchmark's spec."""

    benchmark: str
    kind: str  # "raise_threshold" | "allow_hyperparameter" | "change_default"
    description: str
    new_threshold: float | None = None
    hyperparameter: str | None = None
    new_default: Any = None

    def apply(self, spec: BenchmarkSpec) -> BenchmarkSpec:
        if spec.name != self.benchmark:
            raise ValueError(f"change targets {self.benchmark!r}, got spec {spec.name!r}")
        if self.kind == "raise_threshold":
            if self.new_threshold is None:
                raise ValueError("raise_threshold requires new_threshold")
            if self.new_threshold < spec.quality_threshold:
                raise ValueError(
                    f"threshold updates may only raise the bar: "
                    f"{self.new_threshold} < {spec.quality_threshold}"
                )
            return dataclasses.replace(spec, quality_threshold=self.new_threshold)
        if self.kind == "allow_hyperparameter":
            if self.hyperparameter is None:
                raise ValueError("allow_hyperparameter requires hyperparameter")
            if self.hyperparameter not in spec.default_hyperparameters:
                raise ValueError(f"{self.hyperparameter!r} is not a known hyperparameter")
            return dataclasses.replace(
                spec,
                modifiable_hyperparameters=spec.modifiable_hyperparameters
                | {self.hyperparameter},
            )
        if self.kind == "change_default":
            if self.hyperparameter is None:
                raise ValueError("change_default requires hyperparameter")
            if self.hyperparameter not in spec.default_hyperparameters:
                raise ValueError(f"{self.hyperparameter!r} is not a known hyperparameter")
            defaults = dict(spec.default_hyperparameters)
            defaults[self.hyperparameter] = self.new_default
            return dataclasses.replace(spec, default_hyperparameters=defaults)
        raise ValueError(f"unknown change kind {self.kind!r}")


@dataclass(frozen=True)
class SuiteVersion:
    """A named round with its rule/spec changes over the previous round."""

    name: str
    changes: tuple[SpecChange, ...] = field(default_factory=tuple)

    def changelog(self) -> str:
        lines = [f"Suite version {self.name}:"]
        for change in self.changes:
            lines.append(f"  - [{change.benchmark}] {change.description}")
        return "\n".join(lines)


def apply_version(specs: dict[str, BenchmarkSpec], version: SuiteVersion) -> dict[str, BenchmarkSpec]:
    """Apply a version's changes; unknown benchmarks are an error."""
    updated = dict(specs)
    for change in version.changes:
        if change.benchmark not in updated:
            raise KeyError(f"change targets unknown benchmark {change.benchmark!r}")
        updated[change.benchmark] = change.apply(updated[change.benchmark])
    return updated


# The paper's v0.6 updates, expressed against the mini suite's specs.
V06_CHANGES = SuiteVersion(
    name="v0.6-mini",
    changes=(
        SpecChange(
            benchmark="image_classification",
            kind="allow_hyperparameter",
            hyperparameter="optimizer",
            description="allow the LARS optimizer for large batch sizes "
                        "(already modifiable in the mini suite; idempotent)",
        ),
        SpecChange(
            benchmark="image_classification",
            kind="raise_threshold",
            new_threshold=0.91,
            description="raise top-1 target (paper: 74.9% -> 75.9%)",
        ),
        SpecChange(
            benchmark="translation_recurrent",
            kind="raise_threshold",
            new_threshold=40.0,
            description="raise BLEU target after GNMT architecture improvements "
                        "(paper: 21.8 -> 24.0 Sacre BLEU)",
        ),
    ),
)
