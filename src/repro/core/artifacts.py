"""Submission artifacts on disk (§4.1).

"An MLPERF submission consists of system description, training session log
files, and all code and libraries required to reproduce those training
sessions. All of these are made publicly available in MLPERF GitHub
simultaneously with publication of MLPERF results."

This module serializes a :class:`~repro.core.submission.Submission` to the
directory layout real MLPerf results repositories use, loads it back, and
offers a text-level compliance entry point so logs can be audited exactly
as published files:

    <root>/<submitter>/
      systems/<system_name>.json
      results/<system_name>/<benchmark>/result_<k>.txt
      code/README.md              (pointer to the reproduction code)
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path

import numpy as np

from ..suite.base import BenchmarkSpec
from ..telemetry import RunTelemetry
from .mllog import Keys, MLLogger, iter_log_lines, parse_log_lines
from .review import ReviewReport, review_submission
from .runner import RunResult
from .submission import Category, Division, Submission, SystemDescription, SystemType
from .timing import TimingBreakdown

__all__ = ["save_submission", "load_submission", "review_directory", "check_log_text",
           "save_run_result", "load_run_result"]


def save_submission(submission: Submission, root: str | Path) -> Path:
    """Write the submission's artifacts; returns the submitter directory."""
    base = Path(root) / submission.system.submitter
    systems_dir = base / "systems"
    systems_dir.mkdir(parents=True, exist_ok=True)

    system_payload = asdict(submission.system)
    system_payload["system_type"] = submission.system.system_type.value
    meta = {
        "division": submission.division.value,
        "category": submission.category.value,
        "code_url": submission.code_url,
        "notes": submission.notes,
        "system": system_payload,
    }
    (systems_dir / f"{submission.system.system_name}.json").write_text(
        json.dumps(meta, indent=2, sort_keys=True)
    )

    for benchmark, runs in submission.runs.items():
        bench_dir = base / "results" / submission.system.system_name / benchmark
        bench_dir.mkdir(parents=True, exist_ok=True)
        for i, run in enumerate(runs):
            save_run_result(bench_dir / f"result_{i}.txt", run)

    code_dir = base / "code"
    code_dir.mkdir(exist_ok=True)
    (code_dir / "README.md").write_text(
        f"Reproduction code: {submission.code_url or '(this repository)'}\n"
    )
    return base


def _scrub(hp: dict) -> dict:
    return {k: (list(v) if isinstance(v, tuple) else v) for k, v in hp.items()}


def save_run_result(path: str | Path, run: RunResult) -> Path:
    """Write one run as a ``result_*.txt``-format file (header + log lines).

    This is the unit the submission layout is built from; the campaign
    journal reuses it so per-job results stay auditable with the same
    tooling (``repro trace``, :func:`check_log_text`) as published files.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    # Trained parameters go in an .npz sidecar next to the text file (the
    # log format stays line-oriented and auditable); the header records the
    # sidecar's name so the round-trip needs only the result file's path.
    params_name = None
    if run.model_state:
        sidecar = path.with_name(path.stem + ".params.npz")
        np.savez(sidecar, **run.model_state)
        params_name = sidecar.name
    header = json.dumps(
        {
            "benchmark": run.benchmark,
            "model_params": params_name,
            "seed": run.seed,
            "hyperparameters": _scrub(run.hyperparameters),
            "time_to_train_s": run.time_to_train_s,
            "epochs": run.epochs,
            "quality": run.quality,
            "reached_target": run.reached_target,
            "breakdown": (
                asdict(run.breakdown) if run.breakdown is not None else None
            ),
            # Metrics ride in the header so `repro stats` sees counters
            # (e.g. allreduce traffic) on reloaded runs; trace events are
            # reconstructible from the log and stay out of it.
            "metrics": run.telemetry.metrics if run.telemetry is not None else None,
            # Per-run sampled series (throughput, eval quality, arena hit
            # rate, ...) back `repro stats --series` on reloaded runs.
            "series": run.telemetry.series if run.telemetry is not None else None,
            # The op-level profile (when the run sampled one) backs
            # `repro profile` on saved artifacts.
            "op_profile": (run.telemetry.op_profile
                           if run.telemetry is not None else None),
        },
        sort_keys=True,
    )
    path.write_text(f"# repro-run {header}\n" + "\n".join(run.log_lines) + "\n")
    return path


def load_run_result(benchmark: str | Path | None, path: str | Path | None = None) -> RunResult:
    """Read one ``result_*.txt``-format file back into a :class:`RunResult`.

    The benchmark name may be omitted (``load_run_result(path)``) for files
    written by this version, whose header records it; the two-argument form
    stays for older artifacts and directory-layout callers.
    """
    if path is None:
        benchmark, path = None, benchmark
    return _parse_result_file(benchmark, Path(path))


def load_submission(submitter_dir: str | Path) -> Submission:
    """Reconstruct a submission from its artifact directory."""
    base = Path(submitter_dir)
    system_files = sorted((base / "systems").glob("*.json"))
    if len(system_files) != 1:
        raise FileNotFoundError(
            f"expected exactly one system description in {base / 'systems'}, "
            f"found {len(system_files)}"
        )
    meta = json.loads(system_files[0].read_text())
    system_payload = dict(meta["system"])
    system_payload["system_type"] = SystemType(system_payload["system_type"])
    system = SystemDescription(**system_payload)
    submission = Submission(
        system=system,
        division=Division(meta["division"]),
        category=Category(meta["category"]),
        code_url=meta.get("code_url", ""),
        notes=meta.get("notes", ""),
    )

    results_root = base / "results" / system.system_name
    if results_root.exists():
        for bench_dir in sorted(p for p in results_root.iterdir() if p.is_dir()):
            runs = []
            for result_file in sorted(bench_dir.glob("result_*.txt")):
                runs.append(_parse_result_file(bench_dir.name, result_file))
            if runs:
                submission.add_runs(bench_dir.name, runs)
    return submission


def _parse_result_file(benchmark: str | None, path: Path) -> RunResult:
    text = path.read_text()
    first, _, rest = text.partition("\n")
    if not first.startswith("# repro-run "):
        raise ValueError(f"{path}: missing run header")
    header = json.loads(first[len("# repro-run "):])
    if benchmark is None:
        benchmark = header.get("benchmark")
        if not benchmark:
            raise ValueError(
                f"{path}: header records no benchmark name; pass it explicitly"
            )
    log_lines = [line for line in rest.splitlines() if line.strip()]
    # Rehydrate the trained parameters when the sidecar is present; a run
    # copied without its .params.npz still loads (it just isn't servable).
    model_state = None
    params_name = header.get("model_params")
    if params_name:
        sidecar = path.with_name(params_name)
        if sidecar.exists():
            with np.load(sidecar) as npz:
                model_state = {key: npz[key].copy() for key in npz.files}
    # Streaming parse tolerates a truncated final log line, so a result
    # file from a killed worker still reviews/reloads cleanly.
    history = [float(e.value) for e in iter_log_lines(rest.splitlines())
               if e.key == Keys.EVAL_ACCURACY]
    raw_breakdown = header.get("breakdown")
    raw_metrics = header.get("metrics")
    raw_series = header.get("series")
    raw_profile = header.get("op_profile")
    return RunResult(
        benchmark=benchmark,
        seed=int(header["seed"]),
        hyperparameters=dict(header["hyperparameters"]),
        reached_target=bool(header["reached_target"]),
        quality=float(header["quality"]),
        epochs=int(header["epochs"]),
        time_to_train_s=float(header["time_to_train_s"]),
        quality_history=history,
        log_lines=log_lines,
        breakdown=TimingBreakdown(**raw_breakdown) if raw_breakdown else None,
        telemetry=(
            RunTelemetry(metrics=raw_metrics or {}, series=raw_series or {},
                         op_profile=raw_profile or {})
            if raw_metrics or raw_series or raw_profile else None
        ),
        model_state=model_state,
    )


def review_directory(submitter_dir: str | Path,
                     specs: dict[str, BenchmarkSpec]) -> ReviewReport:
    """Load artifacts from disk and run the full compliance review —
    auditing the *published files*, exactly as real review does."""
    return review_submission(load_submission(submitter_dir), specs)


def check_log_text(text: str, spec: BenchmarkSpec) -> list[str]:
    """Lightweight text-level log audit; returns human-readable problems.

    Useful as a pre-submission lint: structure and quality checks without
    building a full Submission.
    """
    problems: list[str] = []
    events = parse_log_lines(text)
    if not events:
        return ["no MLLOG events found"]
    log = MLLogger(clock=lambda: 0.0)
    log.events = events
    for key in (Keys.RUN_START, Keys.RUN_STOP, Keys.EVAL_ACCURACY):
        if log.first(key) is None:
            problems.append(f"missing required event: {key}")
    bench = log.first(Keys.SUBMISSION_BENCHMARK)
    if bench is None:
        problems.append("missing submission_benchmark event")
    elif bench.value != spec.name:
        problems.append(f"benchmark mismatch: log says {bench.value!r}, expected {spec.name!r}")
    evals = log.find(Keys.EVAL_ACCURACY)
    if evals and float(evals[-1].value) < spec.quality_threshold:
        problems.append(
            f"final quality {float(evals[-1].value):.4f} below target "
            f"{spec.quality_threshold}"
        )
    times = [e.time_ms for e in events]
    if any(b < a for a, b in zip(times, times[1:])):
        problems.append("event timestamps are not monotonically non-decreasing")
    return problems
