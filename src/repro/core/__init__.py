"""The MLPerf harness — the paper's primary contribution as code.

Structured logging (§4.1), timing rules (§3.2.1), run orchestration,
result aggregation (§3.2.2), hyperparameter rules and divisions (§4.2.1),
system categories (§4.2.2), submissions and peer review (§4.1), results
reporting and the cloud scale metric (§4.2.3-4).
"""

from .mllog import Keys, LogEvent, MLLogger, parse_log_lines
from .timing import (
    Clock,
    FakeClock,
    MODEL_CREATION_EXCLUSION_CAP_S,
    TimingBreakdown,
    TrainingTimer,
    WallClock,
)
from .runner import BenchmarkRunner, RunFailure, RunResult, RunTimeout
from .results import (
    BenchmarkScore,
    REQUIRED_RUNS_BY_AREA,
    olympic_mean,
    score_runs,
)
from .rules import ALWAYS_MODIFIABLE, RuleViolation, check_hyperparameters
from .submission import (
    Category,
    Division,
    Submission,
    SystemDescription,
    SystemType,
)
from .review import ReviewReport, borrow_hyperparameters, review_submission
from .reporting import (
    CampaignSummary,
    PhaseRow,
    ResultsReport,
    ResultsRow,
    SummaryScoreRefused,
    build_phase_table,
    build_report,
    render_campaign_summary,
    render_phase_table,
    summary_score,
)
from .rcp import ReferenceConvergencePoints, check_convergence, collect_reference_points
from .versioning import SpecChange, SuiteVersion, V06_CHANGES, apply_version
from .artifacts import (
    check_log_text,
    load_run_result,
    load_submission,
    review_directory,
    save_run_result,
    save_submission,
)
from .scaling import (
    ACCELERATOR_WEIGHTS,
    ScaleReport,
    cloud_scale,
    correlation_with_cost,
    system_cloud_scale,
)

__all__ = [
    "ReferenceConvergencePoints",
    "check_convergence",
    "collect_reference_points",
    "SpecChange",
    "SuiteVersion",
    "V06_CHANGES",
    "apply_version",
    "check_log_text",
    "load_run_result",
    "load_submission",
    "review_directory",
    "save_run_result",
    "save_submission",
    "Keys",
    "LogEvent",
    "MLLogger",
    "parse_log_lines",
    "Clock",
    "FakeClock",
    "MODEL_CREATION_EXCLUSION_CAP_S",
    "TimingBreakdown",
    "TrainingTimer",
    "WallClock",
    "BenchmarkRunner",
    "RunFailure",
    "RunResult",
    "RunTimeout",
    "BenchmarkScore",
    "REQUIRED_RUNS_BY_AREA",
    "olympic_mean",
    "score_runs",
    "ALWAYS_MODIFIABLE",
    "RuleViolation",
    "check_hyperparameters",
    "Category",
    "Division",
    "Submission",
    "SystemDescription",
    "SystemType",
    "ReviewReport",
    "borrow_hyperparameters",
    "review_submission",
    "CampaignSummary",
    "PhaseRow",
    "ResultsReport",
    "ResultsRow",
    "SummaryScoreRefused",
    "build_phase_table",
    "build_report",
    "render_campaign_summary",
    "render_phase_table",
    "summary_score",
    "ACCELERATOR_WEIGHTS",
    "ScaleReport",
    "cloud_scale",
    "correlation_with_cost",
    "system_cloud_scale",
]
