"""Peer review: compliance checking and hyperparameter borrowing (§4.1).

"Prior to result publication submissions are peer reviewed for compliance
with MLPERF rules. Compliance issues, if any, are brought up with
submitters and resubmission after addressing them is allowed.
Additionally, some hyper-parameter borrowing is allowed during the review
period."

The checker works from the submission's artifacts alone (logs + metadata),
the way real review does: every rule below is validated against the
structured log lines, not against in-memory Python state.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..suite.base import BenchmarkSpec
from .mllog import Keys, MLLogger
from .results import REQUIRED_RUNS_BY_AREA
from .rules import RuleViolation, check_hyperparameters
from .runner import RunResult
from .submission import Division, Submission

__all__ = ["ReviewReport", "review_submission", "borrow_hyperparameters"]


@dataclass
class ReviewReport:
    """Outcome of compliance review for one submission."""

    submitter: str
    division: Division
    violations: list[RuleViolation] = field(default_factory=list)

    @property
    def compliant(self) -> bool:
        return not self.violations

    def __str__(self) -> str:
        status = "COMPLIANT" if self.compliant else "NON-COMPLIANT"
        lines = [f"{self.submitter} [{self.division.value}]: {status}"]
        lines.extend(f"  - {v}" for v in self.violations)
        return "\n".join(lines)


def _check_log_structure(spec: BenchmarkSpec, run: RunResult) -> list[RuleViolation]:
    """Validate one run's log against the §3.2.1/§4.1 requirements."""
    violations: list[RuleViolation] = []
    log = MLLogger.from_lines(run.log_lines)

    required_keys = [
        Keys.SUBMISSION_BENCHMARK, Keys.QUALITY_TARGET, Keys.SEED,
        Keys.INIT_START, Keys.INIT_STOP, Keys.RUN_START, Keys.RUN_STOP,
    ]
    for key in required_keys:
        if log.first(key) is None:
            violations.append(RuleViolation(spec.name, "missing_log_event", f"no {key} event"))
    bench_event = log.first(Keys.SUBMISSION_BENCHMARK)
    if bench_event is not None and bench_event.value != spec.name:
        violations.append(
            RuleViolation(spec.name, "benchmark_mismatch",
                          f"log claims benchmark {bench_event.value!r}")
        )
    target_event = log.first(Keys.QUALITY_TARGET)
    if target_event is not None and float(target_event.value) != spec.quality_threshold:
        violations.append(
            RuleViolation(spec.name, "quality_target_mismatch",
                          f"log target {target_event.value} != rule target "
                          f"{spec.quality_threshold}")
        )

    # Ordering: run_start after init_stop; run_stop last.
    run_start = log.first(Keys.RUN_START)
    init_stop = log.first(Keys.INIT_STOP)
    run_stop = log.last(Keys.RUN_STOP)
    if run_start and init_stop and run_start.time_ms < init_stop.time_ms:
        violations.append(
            RuleViolation(spec.name, "timing_order", "run_start precedes init_stop")
        )
    if run_start and run_stop and run_stop.time_ms < run_start.time_ms:
        violations.append(
            RuleViolation(spec.name, "timing_order", "run_stop precedes run_start")
        )

    # Quality: the last eval must meet the target for a scored run.
    evals = log.find(Keys.EVAL_ACCURACY)
    if not evals:
        violations.append(
            RuleViolation(spec.name, "missing_evals", "no eval_accuracy events in log")
        )
    elif float(evals[-1].value) < spec.quality_threshold:
        violations.append(
            RuleViolation(
                spec.name, "quality_not_reached",
                f"final quality {evals[-1].value:.4f} < target {spec.quality_threshold}",
            )
        )

    # Timing integrity: the claimed time-to-train must be consistent with
    # the log's own run_start/run_stop timestamps (a claimed time *below*
    # what the log supports means the submitter under-reported; small
    # excesses are legitimate — model-creation overflow is added on top).
    if run_start and run_stop:
        log_run_seconds = (run_stop.time_ms - run_start.time_ms) / 1000.0
        # Tolerance covers millisecond timestamp rounding and the skew
        # between timer marks and their log events.
        slack = 1e-3 + 0.01 * log_run_seconds
        if run.time_to_train_s < log_run_seconds - slack:
            violations.append(
                RuleViolation(
                    spec.name, "timing_integrity",
                    f"claimed TTT {run.time_to_train_s:.3f}s is less than the "
                    f"log-derived run duration {log_run_seconds:.3f}s",
                )
            )
    return violations


def review_submission(
    submission: Submission,
    specs: dict[str, BenchmarkSpec],
) -> ReviewReport:
    """Full compliance review of a submission against the rules."""
    report = ReviewReport(submitter=submission.system.submitter, division=submission.division)

    for issue in submission.validate_category():
        report.violations.append(RuleViolation("*", "category", issue))

    for name, runs in submission.runs.items():
        spec = specs.get(name)
        if spec is None:
            report.violations.append(
                RuleViolation(name, "unknown_benchmark", "not in the benchmark suite")
            )
            continue

        # §3.2.2 run-count rule.
        required = REQUIRED_RUNS_BY_AREA.get(spec.area, spec.required_runs)
        if len(runs) != required:
            report.violations.append(
                RuleViolation(name, "run_count",
                              f"{len(runs)} runs submitted; {required} required")
            )

        # §2.2.3: runs must differ only in seed — identical HPs, distinct seeds.
        seeds = [r.seed for r in runs]
        if len(set(seeds)) != len(seeds):
            report.violations.append(
                RuleViolation(name, "duplicate_seeds", f"seeds reused: {sorted(seeds)}")
            )
        hp_sets = {tuple(sorted((k, str(v)) for k, v in r.hyperparameters.items())) for r in runs}
        if len(hp_sets) > 1:
            report.violations.append(
                RuleViolation(name, "inconsistent_hyperparameters",
                              "runs of one benchmark must share hyperparameters")
            )

        for run in runs:
            report.violations.extend(
                check_hyperparameters(spec, run.hyperparameters, submission.division)
            )
            report.violations.extend(_check_log_structure(spec, run))
    return report


def borrow_hyperparameters(
    borrower: dict, lender: dict, spec: BenchmarkSpec
) -> dict:
    """Hyperparameter borrowing during review (§4.1).

    "if a submission uses hyper-parameters that would also benefit other
    submissions, we want to ensure that those systems have an opportunity
    to adopt those hyper-parameters."

    The borrower adopts the lender's values for every *modifiable*
    hyperparameter; fixed hyperparameters keep the borrower's values (they
    must equal the reference anyway in the Closed division).
    """
    adopted = dict(borrower)
    for name in spec.modifiable_hyperparameters | {"batch_size"}:
        if name in lender:
            adopted[name] = lender[name]
    return adopted
