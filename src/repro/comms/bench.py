"""Comms micro-benchmark (``repro bench-comms``).

Sweeps worker count × reduction algorithm × bucket size on a fixed MLP
workload and, for every configuration, trains the *same* step sequence as
the in-process :class:`~repro.systems.dataparallel.SynchronousDataParallel`
baseline — so each timing row doubles as a §2.2.4 equivalence check: the
final parameter state and every per-step loss must be bit-identical to
the baseline at the same worker count (which also makes all algorithms
bit-identical to each other).

Timing reports mean seconds per step over the measured window (warmup
steps train but are not timed).  Speedup is baseline-time / sharded-time
at the same worker count.  The payload records ``cpu_count`` because the
speedup a process pool can deliver is a property of the machine: on a
single-core host the workers serialize and speedup gates are vacuous, so
:func:`gate_failures` only enforces them when the host has at least as
many cores as the gated worker count.  Correctness gates (bit-identity
across algorithms and against the baseline) apply everywhere, always.
"""

from __future__ import annotations

import os
import time
from typing import Any, Callable

import numpy as np

from ..framework.functional import cross_entropy
from ..framework.layers import Linear
from ..framework.module import Module
from ..framework.optim import SGD
from ..framework.tensor import Tensor
from ..systems.dataparallel import SynchronousDataParallel
from .bucketing import DEFAULT_BUCKET_BYTES
from .engine import ShardedDataParallel, process_backend_available

__all__ = ["bench_comms", "gate_failures", "BENCH_SCHEMA"]

BENCH_SCHEMA = "repro.bench_comms.v1"

# (in, hidden, hidden, out) for the bench MLP; batch must divide by every
# swept worker count, so use a multiple of 12.
_FULL_DIMS = (256, 1024, 1024, 64)
_FULL_BATCH = 120
_SMOKE_DIMS = (64, 128, 32)
_SMOKE_BATCH = 24


class _BenchMLP(Module):
    def __init__(self, dims: tuple[int, ...], rng: np.random.Generator):
        super().__init__()
        for i in range(len(dims) - 1):
            act = "relu" if i < len(dims) - 2 else "none"
            setattr(self, f"fc{i}", Linear(dims[i], dims[i + 1], rng, activation=act))
        self._depth = len(dims) - 1

    def forward(self, x: Tensor) -> Tensor:
        for i in range(self._depth):
            x = getattr(self, f"fc{i}")(x)
        return x


def _loss_fn(model: Module, shard: tuple) -> Tensor:
    inputs, labels = shard
    return cross_entropy(model(Tensor(inputs)), labels)


def _make_workload(dims: tuple[int, ...], batch: int, seed: int,
                   num_batches: int):
    rng = np.random.default_rng(seed)
    batches = [
        (rng.standard_normal((batch, dims[0])).astype(np.float32),
         rng.integers(0, dims[-1], size=batch))
        for _ in range(num_batches)
    ]

    def make_model() -> tuple[Module, SGD]:
        model = _BenchMLP(dims, np.random.default_rng(seed + 1))
        return model, SGD(model.parameters(), lr=0.01, momentum=0.9)

    return batches, make_model


def _run(engine_factory: Callable, make_model: Callable, batches: list,
         warmup: int, steps: int) -> tuple[float, list[float], dict]:
    """Train warmup+steps identical steps; time only the last ``steps``."""
    model, optimizer = make_model()
    engine = engine_factory(model, optimizer)
    try:
        losses = []
        for i in range(warmup):
            losses.append(engine.step(batches[i % len(batches)]))
        t0 = time.perf_counter()
        for i in range(warmup, warmup + steps):
            losses.append(engine.step(batches[i % len(batches)]))
        elapsed = time.perf_counter() - t0
        state = model.state_dict()
    finally:
        if hasattr(engine, "close"):
            engine.close()
    return elapsed / steps, losses, state


def _states_equal(a: dict, b: dict) -> bool:
    return set(a) == set(b) and all(
        a[k].dtype == b[k].dtype and np.array_equal(a[k], b[k]) for k in a
    )


def cpu_count() -> int:
    """Usable cores for this process (affinity-aware where supported)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def bench_comms(*, smoke: bool = False,
                workers: list[int] | None = None,
                algorithms: list[str] | None = None,
                bucket_sizes: list[int] | None = None,
                steps: int | None = None, warmup: int | None = None,
                backend: str | None = None, seed: int = 0) -> dict[str, Any]:
    """Sweep workers × algorithm × bucket size; return the payload.

    Every sharded configuration is checked bit-for-bit (final state and
    per-step losses) against ``SynchronousDataParallel`` at the same
    worker count.
    """
    if workers is None:
        workers = [2] if smoke else [2, 3, 4]
    if algorithms is None:
        algorithms = ["flat", "ring", "tree"]
    if bucket_sizes is None:
        bucket_sizes = [DEFAULT_BUCKET_BYTES] if smoke else [32 * 1024, DEFAULT_BUCKET_BYTES]
    if steps is None:
        steps = 2 if smoke else 8
    if warmup is None:
        warmup = 1 if smoke else 2
    if backend is None:
        backend = "process" if process_backend_available() else "inline"

    dims = _SMOKE_DIMS if smoke else _FULL_DIMS
    batch = _SMOKE_BATCH if smoke else _FULL_BATCH
    batches, make_model = _make_workload(dims, batch, seed, num_batches=4)

    results: list[dict[str, Any]] = []
    best_speedup: dict[str, float] = {}
    all_identical = True

    for num_workers in workers:
        base_step_s, base_losses, base_state = _run(
            lambda m, o: SynchronousDataParallel(m, o, num_workers, _loss_fn),
            make_model, batches, warmup, steps,
        )
        for algorithm in algorithms:
            for bucket_bytes in bucket_sizes:
                step_s, losses, state = _run(
                    lambda m, o: ShardedDataParallel(
                        m, o, num_workers, _loss_fn, algorithm=algorithm,
                        bucket_bytes=bucket_bytes, backend=backend),
                    make_model, batches, warmup, steps,
                )
                identical = (_states_equal(base_state, state)
                             and losses == base_losses)
                all_identical = all_identical and identical
                speedup = base_step_s / step_s if step_s else float("inf")
                key = str(num_workers)
                best_speedup[key] = max(best_speedup.get(key, 0.0), speedup)
                results.append({
                    "workers": num_workers,
                    "algorithm": algorithm,
                    "bucket_bytes": bucket_bytes,
                    "backend": backend,
                    "step_seconds": step_s,
                    "baseline_step_seconds": base_step_s,
                    "speedup": speedup,
                    "bit_identical_vs_sync": identical,
                })

    return {
        "schema": BENCH_SCHEMA,
        "smoke": smoke,
        "backend": backend,
        "cpu_count": cpu_count(),
        "workload": {"dims": list(dims), "batch": batch,
                     "steps": steps, "warmup": warmup},
        "results": results,
        "checks": {
            "bit_identical": all_identical,
            "best_speedup_by_workers": best_speedup,
        },
    }


def gate_failures(payload: dict[str, Any], *,
                  min_speedup: float | None = None,
                  speedup_workers: int = 2) -> list[str]:
    """CI gates over a bench payload; returns human-readable failures.

    Bit-identity (every sharded configuration vs the in-process baseline,
    hence also across algorithms) is enforced unconditionally.  The
    speedup gate only applies when the host has at least
    ``speedup_workers`` usable cores — on fewer cores the worker pool
    serializes and the ratio measures the machine, not the engine.
    """
    failures = []
    for entry in payload["results"]:
        if not entry["bit_identical_vs_sync"]:
            failures.append(
                f"workers={entry['workers']} algorithm={entry['algorithm']} "
                f"bucket_bytes={entry['bucket_bytes']}: diverges from "
                "SynchronousDataParallel"
            )
    if min_speedup is not None and payload["cpu_count"] >= speedup_workers:
        best = payload["checks"]["best_speedup_by_workers"].get(
            str(speedup_workers))
        if best is None:
            failures.append(
                f"no result at workers={speedup_workers} to gate speedup on"
            )
        elif best < min_speedup:
            failures.append(
                f"best speedup at {speedup_workers} workers {best:.2f}x "
                f"< {min_speedup:.2f}x (cpu_count={payload['cpu_count']})"
            )
    return failures
