"""Gradient bucketing: pack parameters into fixed-size flat buffers.

Real data-parallel engines never all-reduce per-parameter tensors — they
coalesce gradients into a handful of flat, fixed-capacity *buckets* so each
reduction moves one large contiguous buffer (PyTorch DDP's design, and the
structured-communication point MLPerf Inference makes about measured
comms).  This module owns that layout:

- :func:`assign_buckets` walks parameters in **reverse** registration
  order — backward passes finalize gradients roughly output-to-input, so
  reverse order lets early buckets fill (and start reducing) while the
  tail of the backward pass is still running;
- :class:`BucketLayout` pins every parameter to a ``(bucket, offset)``
  slot, deterministically — the layout is a pure function of the parameter
  list and capacity, so every worker process derives the identical layout
  without coordination;
- :class:`BucketWriter` copies finished gradients into caller-provided
  flat buffers (plain arrays inline, shared-memory views in the process
  engine) as :meth:`~repro.framework.tensor.Tensor.register_grad_hook`
  fires, and reports the moment each bucket completes.

Parameters whose gradient never materializes (``grad=None`` — a head not
touched by this loss) are flushed as zeros *after* the backward pass and
flagged, so the engine can distinguish "reduced zero" from "no gradient"
and reproduce ``SynchronousDataParallel``'s ``p.grad = None`` behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..framework.module import Parameter

__all__ = ["ParamSlot", "Bucket", "BucketLayout", "BucketWriter",
           "assign_buckets", "DEFAULT_BUCKET_BYTES"]

DEFAULT_BUCKET_BYTES = 256 * 1024


@dataclass(frozen=True)
class ParamSlot:
    """Where one parameter's flattened gradient lives."""

    index: int  # position in the engine's canonical parameter list
    name: str
    shape: tuple[int, ...]
    dtype: np.dtype
    bucket: int
    offset: int  # element offset inside the bucket

    @property
    def size(self) -> int:
        return int(np.prod(self.shape)) if self.shape else 1


@dataclass(frozen=True)
class Bucket:
    """One flat reduction unit: same-dtype parameters packed contiguously."""

    index: int
    dtype: np.dtype
    size: int  # elements
    slots: tuple[ParamSlot, ...]

    @property
    def nbytes(self) -> int:
        return self.size * self.dtype.itemsize


def assign_buckets(params: Sequence[Parameter],
                   bucket_bytes: int = DEFAULT_BUCKET_BYTES,
                   names: Sequence[str] | None = None) -> list[Bucket]:
    """Greedily pack parameters (reverse order) into same-dtype buckets.

    A parameter larger than ``bucket_bytes`` gets a bucket of its own; a
    dtype change forces a new bucket (buckets are homogeneous so reduction
    is a single vectorized chain per bucket).
    """
    if bucket_bytes <= 0:
        raise ValueError("bucket_bytes must be positive")
    if names is None:
        names = [p.name or f"param{i}" for i, p in enumerate(params)]

    buckets: list[Bucket] = []
    pending: list[ParamSlot] = []
    pending_dtype: np.dtype | None = None
    pending_size = 0

    def flush() -> None:
        nonlocal pending, pending_dtype, pending_size
        if pending:
            buckets.append(Bucket(len(buckets), pending_dtype, pending_size,
                                  tuple(pending)))
        pending, pending_dtype, pending_size = [], None, 0

    for index in reversed(range(len(params))):
        p = params[index]
        dtype = np.dtype(p.data.dtype)
        size = int(p.data.size)
        if pending and (dtype != pending_dtype
                        or (pending_size + size) * dtype.itemsize > bucket_bytes):
            flush()
        pending_dtype = dtype
        pending.append(ParamSlot(index=index, name=names[index],
                                 shape=tuple(p.data.shape), dtype=dtype,
                                 bucket=len(buckets), offset=pending_size))
        pending_size += size
    flush()
    return buckets


class BucketLayout:
    """The full bucket map for one model's parameter list."""

    def __init__(self, params: Sequence[Parameter],
                 bucket_bytes: int = DEFAULT_BUCKET_BYTES,
                 names: Sequence[str] | None = None):
        self.params = list(params)
        self.bucket_bytes = int(bucket_bytes)
        self.buckets = assign_buckets(self.params, self.bucket_bytes, names)
        self.slots: dict[int, ParamSlot] = {
            slot.index: slot for b in self.buckets for slot in b.slots
        }

    @property
    def num_buckets(self) -> int:
        return len(self.buckets)

    @property
    def total_elements(self) -> int:
        return sum(b.size for b in self.buckets)

    @property
    def total_bytes(self) -> int:
        return sum(b.nbytes for b in self.buckets)

    def allocate(self) -> list[np.ndarray]:
        """Fresh zeroed flat buffers, one per bucket."""
        return [np.zeros(b.size, dtype=b.dtype) for b in self.buckets]

    def slot_view(self, buffers: Sequence[np.ndarray], slot: ParamSlot) -> np.ndarray:
        """The (flat) view of one parameter's region in ``buffers``."""
        return buffers[slot.bucket][slot.offset:slot.offset + slot.size]


class BucketWriter:
    """Streams finished gradients into bucket buffers via grad hooks.

    One writer serves one model replica.  Per step: :meth:`arm` resets the
    fill state, the backward pass fires parameter grad hooks which copy
    each gradient into its slot and invoke ``on_bucket_ready(bucket_index)``
    the instant a bucket's last gradient lands, and :meth:`flush_missing`
    zero-fills whatever the backward pass never produced (returning those
    slots so the caller can flag them).
    """

    def __init__(self, layout: BucketLayout, buffers: Sequence[np.ndarray],
                 on_bucket_ready: Callable[[int], None] | None = None):
        sizes = [buf.size for buf in buffers]
        expected = [b.size for b in layout.buckets]
        if sizes != expected:
            raise ValueError(f"buffer sizes {sizes} do not match layout {expected}")
        self.layout = layout
        self.buffers = list(buffers)
        self.on_bucket_ready = on_bucket_ready
        self._filled: list[int] = [0] * layout.num_buckets
        self._written: set[int] = set()
        self._armed = False
        self._removers = [
            p.register_grad_hook(self._make_hook(layout.slots[i]))
            for i, p in enumerate(layout.params)
        ]

    def _make_hook(self, slot: ParamSlot) -> Callable:
        def hook(tensor) -> None:
            if self._armed and slot.index not in self._written:
                self._write(slot, tensor.grad)
        return hook

    def _write(self, slot: ParamSlot, grad: np.ndarray) -> None:
        view = self.layout.slot_view(self.buffers, slot)
        np.copyto(view, grad.reshape(-1))
        self._written.add(slot.index)
        self._filled[slot.bucket] += 1
        if (self._filled[slot.bucket] == len(self.layout.buckets[slot.bucket].slots)
                and self.on_bucket_ready is not None):
            self.on_bucket_ready(slot.bucket)

    def arm(self) -> None:
        """Reset fill tracking for a new backward pass."""
        self._filled = [0] * self.layout.num_buckets
        self._written = set()
        self._armed = True

    def flush_missing(self) -> list[ParamSlot]:
        """Zero-fill unproduced gradients; completes every pending bucket."""
        missing = [
            self.layout.slots[i]
            for i in range(len(self.layout.params))
            if i not in self._written
        ]
        for slot in missing:
            self.layout.slot_view(self.buffers, slot)[:] = 0
            self._written.add(slot.index)
            self._filled[slot.bucket] += 1
            if (self._filled[slot.bucket] == len(self.layout.buckets[slot.bucket].slots)
                    and self.on_bucket_ready is not None):
                self.on_bucket_ready(slot.bucket)
        self._armed = False
        return missing

    def close(self) -> None:
        """Detach every grad hook."""
        for remove in self._removers:
            remove()
        self._removers = []
