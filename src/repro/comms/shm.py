"""Shared-memory plumbing for the multiprocess data-parallel engine.

All bulk per-step traffic — parameters, per-worker gradient buckets, the
reduced output, and input batches — travels through
``multiprocessing.shared_memory`` segments: one memcpy in, zero-copy views
out, and **no per-step pickling of weights or batches** (only small layout
descriptors cross the command queues).  This module keeps the segment
bookkeeping in one place:

- :func:`aligned_offsets` lays out heterogeneous arrays in one segment
  with 64-byte alignment (so every view is safely dtype-aligned and
  cache-line separated);
- :class:`Segment` wraps ``SharedMemory`` with typed views and exactly-once
  cleanup semantics (close everywhere, unlink once, in the creator);
- :class:`BatchBoard` publishes a tuple of batch arrays into a growable
  segment and hands workers a compact layout descriptor to rebuild
  zero-copy views from.

Fork-based pools inherit the creator's mappings directly; a worker only
(re)attaches by name when the batch board has grown a fresh segment, and
unregisters the attachment from ``resource_tracker`` so the segment's
lifetime stays owned by the parent.
"""

from __future__ import annotations

from multiprocessing import resource_tracker, shared_memory
from typing import Sequence

import numpy as np

__all__ = ["ALIGNMENT", "aligned_offsets", "Segment", "BatchBoard", "BatchLayout"]

ALIGNMENT = 64


def _align(offset: int) -> int:
    return (offset + ALIGNMENT - 1) // ALIGNMENT * ALIGNMENT


def aligned_offsets(specs: Sequence[tuple[tuple[int, ...], np.dtype]]) -> tuple[list[int], int]:
    """Byte offsets (64-byte aligned) for packing ``specs`` into one buffer.

    Returns ``(offsets, total_bytes)``; ``total_bytes`` is at least 1 so a
    zero-spec layout still maps a valid segment.
    """
    offsets, cursor = [], 0
    for shape, dtype in specs:
        cursor = _align(cursor)
        offsets.append(cursor)
        cursor += int(np.prod(shape, dtype=np.int64)) * np.dtype(dtype).itemsize if shape else np.dtype(dtype).itemsize
    return offsets, max(cursor, 1)


class Segment:
    """One shared-memory segment with ndarray views at fixed offsets."""

    def __init__(self, nbytes: int, name_hint: str = "repro-comms"):
        self.shm = shared_memory.SharedMemory(create=True, size=max(int(nbytes), 1))
        self.name = self.shm.name
        self._owner = True

    @classmethod
    def attach(cls, name: str) -> "Segment":
        """Attach to an existing segment (worker side) without owning it.

        Attaching must not register the segment with ``resource_tracker``:
        the creator already did, the tracker cache is shared across a fork,
        and a second registration of the same name would corrupt the
        creator's exactly-once unlink accounting.
        """
        seg = cls.__new__(cls)
        original_register = resource_tracker.register
        try:
            resource_tracker.register = (
                lambda rname, rtype: None if rtype == "shared_memory"
                else original_register(rname, rtype)
            )
            seg.shm = shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original_register
        seg.name = name
        seg._owner = False
        return seg

    @property
    def size(self) -> int:
        return self.shm.size

    def view(self, shape: tuple[int, ...], dtype, offset: int = 0,
             writeable: bool = True) -> np.ndarray:
        arr = np.ndarray(shape, dtype=dtype, buffer=self.shm.buf, offset=offset)
        if not writeable:
            arr.flags.writeable = False
        return arr

    def close(self) -> None:
        try:
            self.shm.close()
        except BufferError:  # views still alive; drop our handle lazily
            pass

    def unlink(self) -> None:
        if self._owner:
            self._owner = False
            try:
                self.shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def destroy(self) -> None:
        self.close()
        self.unlink()


class BatchLayout:
    """Picklable descriptor of one published batch (the only per-step IPC)."""

    __slots__ = ("segment", "generation", "shapes", "dtypes", "offsets")

    def __init__(self, segment: str, generation: int,
                 shapes: list[tuple[int, ...]], dtypes: list[str],
                 offsets: list[int]):
        self.segment = segment
        self.generation = generation
        self.shapes = shapes
        self.dtypes = dtypes
        self.offsets = offsets

    def __reduce__(self):
        return (BatchLayout, (self.segment, self.generation, self.shapes,
                              self.dtypes, self.offsets))


class BatchBoard:
    """Publishes batch tuples into shared memory; grows monotonically.

    The parent calls :meth:`publish` once per step; workers call
    :meth:`views` with the returned layout.  A worker caches its attachment
    per generation, so re-attachment only happens when a larger batch
    forced a new segment.
    """

    def __init__(self):
        self._segment: Segment | None = None
        self._generation = 0
        # Worker-side cache: (generation -> Segment)
        self._attached: tuple[int, Segment] | None = None

    def publish(self, arrays: Sequence[np.ndarray]) -> BatchLayout:
        specs = [(a.shape, a.dtype) for a in arrays]
        offsets, total = aligned_offsets(specs)
        if self._segment is None or self._segment.size < total:
            if self._segment is not None:
                self._segment.destroy()
            self._segment = Segment(total)
            self._generation += 1
        seg = self._segment
        for a, offset in zip(arrays, offsets):
            np.copyto(seg.view(a.shape, a.dtype, offset), a)
        return BatchLayout(
            segment=seg.name,
            generation=self._generation,
            shapes=[tuple(a.shape) for a in arrays],
            dtypes=[a.dtype.str for a in arrays],
            offsets=offsets,
        )

    def views(self, layout: BatchLayout) -> tuple[np.ndarray, ...]:
        """Worker-side zero-copy views of a published batch (read-only)."""
        if self._attached is None or self._attached[0] != layout.generation:
            if self._attached is not None:
                self._attached[1].close()
            self._attached = (layout.generation, Segment.attach(layout.segment))
        seg = self._attached[1]
        return tuple(
            seg.view(shape, np.dtype(dtype), offset, writeable=False)
            for shape, dtype, offset in zip(layout.shapes, layout.dtypes, layout.offsets)
        )

    def close(self) -> None:
        if self._segment is not None:
            self._segment.destroy()
            self._segment = None
        if self._attached is not None:
            self._attached[1].close()
            self._attached = None
