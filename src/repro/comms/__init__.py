"""Multi-core data-parallel communication engine.

The real-hardware counterpart of the in-process simulation in
:mod:`repro.systems.dataparallel`: a persistent forked worker pool over
``multiprocessing.shared_memory`` (:mod:`repro.comms.shm`), gradients
coalesced into flat buckets (:mod:`repro.comms.bucketing`), reduced by
selectable ``flat``/``ring``/``tree`` algorithms that share one canonical
arithmetic order (:mod:`repro.comms.reducers`) so every topology and
worker count is bit-identical to ``SynchronousDataParallel`` — the
§2.2.4 mathematical-equivalence requirement.  ``ShardedDataParallel``
(:mod:`repro.comms.engine`) ties it together; :mod:`repro.comms.bench`
measures it (``repro bench-comms``).
"""

from .bucketing import (
    DEFAULT_BUCKET_BYTES,
    Bucket,
    BucketLayout,
    BucketWriter,
    ParamSlot,
    assign_buckets,
)
from .engine import ShardedDataParallel, process_backend_available
from .reducers import (
    REDUCERS,
    Chunk,
    FlatReducer,
    Reducer,
    RingReducer,
    TreeReducer,
    make_reducer,
    reduce_chunk,
)
from .shm import BatchBoard, Segment, aligned_offsets

__all__ = [
    "DEFAULT_BUCKET_BYTES",
    "Bucket",
    "BucketLayout",
    "BucketWriter",
    "ParamSlot",
    "assign_buckets",
    "ShardedDataParallel",
    "process_backend_available",
    "REDUCERS",
    "Chunk",
    "FlatReducer",
    "Reducer",
    "RingReducer",
    "TreeReducer",
    "make_reducer",
    "reduce_chunk",
    "BatchBoard",
    "Segment",
    "aligned_offsets",
]
