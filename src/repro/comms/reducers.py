"""All-reduce algorithms over flat gradient buckets.

Three classic topologies are implemented behind one :class:`Reducer`
interface — ``flat`` (a single root gathers everything), ``ring`` (each
rank owns one contiguous chunk of every bucket), and ``tree`` (chunk
ownership assigned by an interleaved binary-tree gather order).

**The determinism contract (§2.2.4).**  Floating-point addition is not
associative, and the paper's mathematical-equivalence requirement means a
submission may not silently change summation order between runs or
topologies.  Every reducer here therefore performs the *arithmetic* in one
canonical order — worker contributions chained in ascending rank order,
``((g0 + g1) + g2) + ...`` — exactly the order the in-process
:class:`~repro.systems.dataparallel.SynchronousDataParallel` accumulates
shards in.  Algorithms differ only in their *schedule*: which rank reduces
which chunk, and in what round structure the results are gathered.  That
is how deterministic all-reduce is done in practice (topology-aware
scheduling around a fixed combining order), and it is what makes ``flat``,
``ring`` and ``tree`` bit-identical to each other and to the single-process
engine for every worker count — a property the test suite enforces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["Chunk", "Reducer", "FlatReducer", "RingReducer", "TreeReducer",
           "REDUCERS", "make_reducer", "reduce_chunk"]

# The parent process (rank -1) rather than a pool worker owns a chunk.
PARENT = -1


@dataclass(frozen=True)
class Chunk:
    """One contiguous slice of a flat bucket, reduced by one owner."""

    start: int
    stop: int
    owner: int  # worker rank, or PARENT for the coordinating process

    @property
    def size(self) -> int:
        return self.stop - self.start


def reduce_chunk(out: np.ndarray, contribs: Sequence[np.ndarray],
                 start: int, stop: int) -> None:
    """Sum ``contribs[w][start:stop]`` into ``out[start:stop]`` canonically.

    The chain runs in ascending rank order — the one summation order every
    algorithm shares.  ``out`` may alias ``contribs[0]`` (never any other
    contribution).
    """
    view = out[start:stop]
    np.copyto(view, contribs[0][start:stop])
    for contrib in contribs[1:]:
        view += contrib[start:stop]


def _even_chunks(n_elements: int, n_chunks: int) -> list[tuple[int, int]]:
    """Split ``[0, n_elements)`` into ``n_chunks`` near-equal spans."""
    base, extra = divmod(n_elements, n_chunks)
    spans, start = [], 0
    for c in range(n_chunks):
        stop = start + base + (1 if c < extra else 0)
        spans.append((start, stop))
        start = stop
    return spans


class Reducer:
    """Strategy interface: schedule chunks, then reduce them canonically."""

    name: str = "abstract"

    def chunks(self, n_elements: int, num_workers: int) -> list[Chunk]:
        """The reduction schedule for one bucket of ``n_elements``."""
        raise NotImplementedError

    def reduce(self, out: np.ndarray, contribs: Sequence[np.ndarray]) -> None:
        """Reduce a whole bucket in-process (the inline backend's path)."""
        for chunk in self.chunks(out.size, len(contribs)):
            reduce_chunk(out, contribs, chunk.start, chunk.stop)


class FlatReducer(Reducer):
    """One root reduces every bucket whole.

    In the process backend the *parent* is the root: it drains buckets as
    they become ready while workers are still inside their backward pass —
    the simplest overlap scheme, at the cost of serializing all reduction
    arithmetic on one process.
    """

    name = "flat"

    def chunks(self, n_elements: int, num_workers: int) -> list[Chunk]:
        return [Chunk(0, n_elements, PARENT)]


class RingReducer(Reducer):
    """Ring reduce-scatter: rank ``w`` owns chunk ``w`` of every bucket.

    Each worker reduces 1/W of every bucket, so the arithmetic itself is
    spread across the pool (the bandwidth-optimal property of ring
    all-reduce), and the gathered result lands in the shared output
    segment — the all-gather half of the ring is a no-op in shared memory.
    """

    name = "ring"

    def chunks(self, n_elements: int, num_workers: int) -> list[Chunk]:
        return [
            Chunk(start, stop, w)
            for w, (start, stop) in enumerate(_even_chunks(n_elements, num_workers))
        ]


class TreeReducer(Reducer):
    """Binary-tree gather order: chunk ownership interleaves the two halves.

    The schedule visits ranks in the order a balanced binary tree gathers
    its leaves (0, W/2, W/4, 3W/4, ...), the log-depth structure tree
    all-reduce exploits for latency.  Arithmetic order per element is still
    canonical — only the chunk→owner mapping and gather order differ from
    ``ring``.
    """

    name = "tree"

    @staticmethod
    def _tree_order(num_workers: int) -> list[int]:
        """Ranks in balanced-binary-tree traversal order."""
        order: list[int] = []

        def visit(lo: int, hi: int) -> None:
            if lo >= hi:
                return
            order.append(lo)
            mid = (lo + hi + 1) // 2
            # Right subtree first mirrors a top-down broadcast tree: the
            # midpoint is reached at depth 1, quarters at depth 2, ...
            if mid < hi:
                visit(mid, hi)
            visit(lo + 1, mid)

        visit(0, num_workers)
        return order

    def chunks(self, n_elements: int, num_workers: int) -> list[Chunk]:
        spans = _even_chunks(n_elements, num_workers)
        return [
            Chunk(start, stop, owner)
            for (start, stop), owner in zip(spans, self._tree_order(num_workers))
        ]


REDUCERS: dict[str, type[Reducer]] = {
    cls.name: cls for cls in (FlatReducer, RingReducer, TreeReducer)
}


def make_reducer(name: str) -> Reducer:
    """Instantiate a reducer by algorithm name (``flat``/``ring``/``tree``)."""
    try:
        return REDUCERS[name]()
    except KeyError:
        raise ValueError(
            f"unknown reduction algorithm {name!r}; pick one of {sorted(REDUCERS)}"
        ) from None
