"""``ShardedDataParallel``: multi-core synchronous data parallelism.

This is the real-hardware counterpart of
:class:`~repro.systems.dataparallel.SynchronousDataParallel` (which loops
shards sequentially in one process).  Semantics are identical — one
optimizer step over the averaged gradient of W shard losses, bit-for-bit
(§2.2.4 mathematical equivalence, enforced by test) — but the W backward
passes run on W cores:

- **process backend** — a persistent pool of forked workers, each holding
  a model replica inherited copy-on-write.  Parameters are published once
  per step into a shared-memory segment (one memcpy; never pickled) and
  every replica binds read-only views; batches travel the same way via
  :class:`~repro.comms.shm.BatchBoard`.  Per-step IPC is a tiny layout
  descriptor plus one float loss per worker.
- **inline backend** — the same bucketed engine run sequentially in one
  process.  It is the reference implementation the process backend must
  match, and the fallback where ``fork`` is unavailable.

Gradients flow through :class:`~repro.comms.bucketing.BucketWriter`
hooks into per-worker shared flat buckets; the moment a bucket's last
gradient lands, its reduction starts — by the parent (``flat``) or by the
owning workers (``ring``/``tree``) — while later buckets are still being
computed.  That compute/comm overlap is measured and exported through the
ambient telemetry as ``comms_*`` metrics:

``comms_bytes_reduced``
    counter — bucket payload bytes pushed through reduction
``comms_bucket_latency_seconds``
    histogram — per-bucket ready→reduced latency
``comms_overlap_fraction``
    gauge — 1 − (reduction tail after the last backward) / (reduction span)
``comms_step_seconds``
    histogram — wall time of each sharded step

Determinism: every reduction algorithm uses the canonical ascending-rank
arithmetic order (see :mod:`repro.comms.reducers`), worker shards are the
same slices ``shard_batch`` produces, and the parent sums worker losses in
rank order — so ``flat``/``ring``/``tree`` at any worker count reproduce
``SynchronousDataParallel`` exactly.  Models must be deterministic
functions of (parameters, batch): replicas never sync non-parameter state
(e.g. BatchNorm running statistics), the standard data-parallel caveat.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
import time
import traceback
import weakref
from typing import Callable, Sequence

import numpy as np

from ..framework.module import Module
from ..framework.optim import Optimizer
from ..framework.tensor import Tensor
from ..systems.dataparallel import shard_batch
from ..telemetry import current_events, current_metrics, current_tracer
from ..telemetry.metrics import COMMS_LATENCY_BUCKETS
from .bucketing import DEFAULT_BUCKET_BYTES, BucketLayout, BucketWriter
from .reducers import PARENT, Chunk, Reducer, make_reducer, reduce_chunk
from .shm import BatchBoard, Segment, aligned_offsets

__all__ = ["ShardedDataParallel", "process_backend_available"]

LossFn = Callable[[Module, tuple], Tensor]

_CTRL_DTYPES = {"i64": np.int64, "f64": np.float64, "u8": np.uint8}


def process_backend_available() -> bool:
    """True when fork-based worker pools can run on this platform."""
    return "fork" in multiprocessing.get_all_start_methods()


def _release(segments, processes, cmd_queues, board, timeout: float = 5.0) -> None:
    """Tear down pool resources (also runs via weakref.finalize on GC)."""
    for q in cmd_queues:
        try:
            q.put(("stop",))
        except Exception:
            pass
    deadline = time.monotonic() + timeout
    for proc in processes:
        proc.join(max(0.0, deadline - time.monotonic()))
    for proc in processes:
        if proc.is_alive():
            proc.terminate()
            proc.join(1.0)
    for seg in segments:
        seg.destroy()
    if board is not None:
        board.close()


class ShardedDataParallel:
    """Drop-in synchronous data parallelism across real processes.

    Same constructor shape and ``step(batch) -> mean_loss`` contract as
    :class:`~repro.systems.dataparallel.SynchronousDataParallel`; extra
    knobs select the reduction algorithm, bucket capacity, and backend.

    ``backend`` is one of ``"process"`` (fork pool; requires POSIX fork),
    ``"inline"`` (sequential reference path), or ``"auto"`` (process when
    fork is available, else inline).  Call :meth:`close` when done — the
    pool and its shared-memory segments persist across steps by design.
    """

    def __init__(self, model: Module, optimizer: Optimizer, num_workers: int,
                 loss_fn: LossFn, *, algorithm: str = "flat",
                 bucket_bytes: int = DEFAULT_BUCKET_BYTES,
                 backend: str = "auto", timeout: float = 60.0):
        if num_workers < 1:
            raise ValueError("need at least one worker")
        if backend not in ("auto", "process", "inline"):
            raise ValueError(f"unknown backend {backend!r}")
        if backend == "process" and not process_backend_available():
            raise RuntimeError("process backend requires the fork start method")
        if backend == "auto":
            backend = "process" if process_backend_available() else "inline"

        self.model = model
        self.optimizer = optimizer
        self.num_workers = num_workers
        self.loss_fn = loss_fn
        self.algorithm = algorithm
        self.backend = backend
        self.timeout = float(timeout)
        self.reducer: Reducer = make_reducer(algorithm)

        named = list(model.named_parameters())
        self._names = [name for name, _ in named]
        self._params = [p for _, p in named]
        self.layout = BucketLayout(self._params, bucket_bytes, self._names)

        # Per-bucket reduction schedule, fixed for the engine's lifetime.
        self._chunk_plan: list[list[Chunk]] = [
            self.reducer.chunks(b.size, num_workers) for b in self.layout.buckets
        ]
        self._broken = False
        self._closed = False
        self._finalizer = None

        if backend == "process":
            self._init_process_pool()
        else:
            self._init_inline()
        current_events().publish(
            "comms_engine_start", backend=self.backend,
            algorithm=self.algorithm, num_workers=self.num_workers,
            num_buckets=self.layout.num_buckets,
        )

    # ------------------------------------------------------------------
    # Inline backend
    # ------------------------------------------------------------------

    def _init_inline(self) -> None:
        self._worker_bufs = [self.layout.allocate() for _ in range(self.num_workers)]
        self._out_bufs = self.layout.allocate()
        self._missing = np.zeros((self.num_workers, len(self._params)), dtype=np.uint8)
        # One writer, rebound to the active worker's buffers per shard.
        self._writer = BucketWriter(self.layout, self._out_bufs)
        # Compiled-step driver: every shard has the same graph shape, so one
        # plan serves all workers; the plan replays parameter grad hooks in
        # eager leaf order, which is what bucketed overlap relies on.
        from ..framework.compile import StepExecutor

        self._executor = StepExecutor(name="sdp-inline")

    def _step_inline(self, batch: tuple[np.ndarray, ...]) -> float:
        shards = shard_batch(batch, self.num_workers)
        self._missing[:] = 0
        total_loss = 0.0
        tracer = current_tracer()
        for w, shard in enumerate(shards):
            with tracer.span("worker_grad", worker=w):
                self._writer.buffers = self._worker_bufs[w]
                self._writer.arm()
                self.model.zero_grad()
                loss = self._executor.step(lambda: self.loss_fn(self.model, shard))
                for slot in self._writer.flush_missing():
                    self._missing[w, slot.index] = 1
            total_loss += float(loss.data)
        from ..telemetry import current_profiler

        with tracer.span("all_reduce", algorithm=self.algorithm,
                         num_workers=self.num_workers), \
                current_profiler().op(
                    "all_reduce", phase="comms",
                    nbytes=self.layout.total_bytes * self.num_workers):
            for b, bucket in enumerate(self.layout.buckets):
                contribs = [bufs[b] for bufs in self._worker_bufs]
                self.reducer.reduce(self._out_bufs[b], contribs)
            self._unpack_grads(self._out_bufs, self._missing)
        self.optimizer.step()
        self.model.zero_grad()
        return total_loss / self.num_workers

    # ------------------------------------------------------------------
    # Process backend: setup
    # ------------------------------------------------------------------

    def _init_process_pool(self) -> None:
        ctx = multiprocessing.get_context("fork")
        layout, W = self.layout, self.num_workers

        # Parameter segment: the parent packs live weights here each step;
        # every replica binds read-only views (weights are never pickled).
        self._param_specs = [(tuple(p.data.shape), np.dtype(p.data.dtype))
                             for p in self._params]
        offsets, total = aligned_offsets(self._param_specs)
        self._param_seg = Segment(total)
        self._param_offsets = offsets
        self._param_views = [
            self._param_seg.view(shape, dtype, off)
            for (shape, dtype), off in zip(self._param_specs, offsets)
        ]

        # Gradient segments (one per worker) + reduced-output segment, all
        # sharing one bucket-offset layout.
        bucket_specs = [((b.size,), b.dtype) for b in layout.buckets]
        self._bucket_offsets, bucket_total = aligned_offsets(bucket_specs)
        self._grad_segs = [Segment(bucket_total) for _ in range(W)]
        self._out_seg = Segment(bucket_total)
        self._grad_views = [
            [seg.view((b.size,), b.dtype, off)
             for b, off in zip(layout.buckets, self._bucket_offsets)]
            for seg in self._grad_segs
        ]
        self._out_views = [
            self._out_seg.view((b.size,), b.dtype, off)
            for b, off in zip(layout.buckets, self._bucket_offsets)
        ]

        # Control segment: counters, missing-grad flags, and monotonic
        # timestamps (comparable across processes on Linux).
        B, P = layout.num_buckets, len(self._params)
        ctrl_specs = [
            ("ready_count", (max(B, 1),), np.int64),
            ("chunks_done", (max(B, 1),), np.int64),
            ("missing", (W, max(P, 1)), np.uint8),
            ("t_ready", (max(B, 1),), np.float64),
            ("t_reduced", (max(B, 1),), np.float64),
            ("t_bwd_end", (W,), np.float64),
        ]
        offsets, total = aligned_offsets([(shape, dt) for _, shape, dt in ctrl_specs])
        self._ctrl_seg = Segment(total)
        self._ctrl = {
            name: self._ctrl_seg.view(shape, dt, off)
            for (name, shape, dt), off in zip(ctrl_specs, offsets)
        }

        self._bucket_locks = [ctx.Lock() for _ in range(B)]
        self._ready_events = [ctx.Event() for _ in range(B)]
        self._reduced_events = [ctx.Event() for _ in range(B)]
        self._cmd_queues = [ctx.SimpleQueue() for _ in range(W)]
        self._result_q = ctx.Queue()
        self._board = BatchBoard()

        self._processes = [
            ctx.Process(target=self._worker_main, args=(rank,), daemon=True,
                        name=f"repro-dp-{rank}")
            for rank in range(W)
        ]
        for proc in self._processes:
            proc.start()

        segments = [*self._grad_segs, self._out_seg, self._param_seg, self._ctrl_seg]
        self._finalizer = weakref.finalize(
            self, _release, segments, self._processes, self._cmd_queues, self._board
        )

    # ------------------------------------------------------------------
    # Process backend: worker side (runs in forked children only)
    # ------------------------------------------------------------------

    def _worker_main(self, rank: int) -> None:
        status = 0
        try:
            self._worker_loop(rank)
        except BaseException:
            try:
                self._result_q.put(("error", rank, traceback.format_exc()))
            except Exception:
                pass
            status = 1
        finally:
            try:
                sys.stdout.flush()
                sys.stderr.flush()
            except Exception:
                pass
            # Skip atexit/interpreter teardown: the child inherited the
            # parent's runtime state and must not flush or finalize it.
            os._exit(status)

    def _worker_loop(self, rank: int) -> None:
        # Bind this replica's weights to read-only views of the shared
        # parameter segment — the parent's per-step pack is instantly
        # visible here, with no message passing.
        for p, (shape, dtype), off in zip(self._params, self._param_specs,
                                          self._param_offsets):
            p.data = self._param_seg.view(shape, dtype, off, writeable=False)

        ready_count = self._ctrl["ready_count"]
        t_ready = self._ctrl["t_ready"]

        def on_bucket_ready(b: int) -> None:
            with self._bucket_locks[b]:
                ready_count[b] += 1
                if ready_count[b] == self.num_workers:
                    t_ready[b] = time.monotonic()
                    self._ready_events[b].set()

        writer = BucketWriter(self.layout, self._grad_views[rank], on_bucket_ready)
        from ..framework.compile import StepExecutor

        self._worker_executor = StepExecutor(name=f"sdp-worker-{rank}")
        my_chunks = [
            (b, chunk)
            for b, plan in enumerate(self._chunk_plan)
            for chunk in plan
            if chunk.owner == rank
        ]

        while True:
            msg = self._cmd_queues[rank].get()
            if msg[0] == "stop":
                return
            _, batch_layout = msg
            try:
                loss_value = self._worker_step(rank, batch_layout, writer, my_chunks)
            except Exception:
                self._result_q.put(("error", rank, traceback.format_exc()))
                continue
            self._result_q.put(("ok", rank, loss_value))

    def _worker_step(self, rank: int, batch_layout, writer: BucketWriter,
                     my_chunks: list[tuple[int, Chunk]]) -> float:
        views = self._board.views(batch_layout)
        n = len(views[0])
        size = n // self.num_workers
        shard = tuple(a[rank * size:(rank + 1) * size] for a in views)

        writer.arm()
        self.model.zero_grad()
        loss = self._worker_executor.step(lambda: self.loss_fn(self.model, shard))
        for slot in writer.flush_missing():
            self._ctrl["missing"][rank, slot.index] = 1
        self._ctrl["t_bwd_end"][rank] = time.monotonic()

        # Reduction duties for ring/tree: reduce owned chunks as their
        # buckets become ready (peers may still be in backward).
        contribs_cache: dict[int, list[np.ndarray]] = {}
        for b, chunk in my_chunks:
            if not self._ready_events[b].wait(self.timeout):
                raise RuntimeError(
                    f"worker {rank} timed out waiting for bucket {b} "
                    f"to become ready ({self.timeout}s)"
                )
            contribs = contribs_cache.get(b)
            if contribs is None:
                contribs = [self._grad_views[r][b] for r in range(self.num_workers)]
                contribs_cache[b] = contribs
            reduce_chunk(self._out_views[b], contribs, chunk.start, chunk.stop)
            self._mark_chunk_done(b)

        self.model.zero_grad()
        return float(loss.data)

    def _mark_chunk_done(self, b: int) -> None:
        chunks_done = self._ctrl["chunks_done"]
        with self._bucket_locks[b]:
            chunks_done[b] += 1
            done = chunks_done[b] == len(self._chunk_plan[b])
        if done:
            self._ctrl["t_reduced"][b] = time.monotonic()
            self._reduced_events[b].set()

    # ------------------------------------------------------------------
    # Process backend: parent side
    # ------------------------------------------------------------------

    def _drain_results(self, losses: dict[int, float]) -> None:
        """Absorb any pending worker results; raise on a reported error."""
        while True:
            try:
                msg = self._result_q.get_nowait()
            except Exception:
                return
            self._absorb_result(msg, losses)

    def _absorb_result(self, msg, losses: dict[int, float]) -> None:
        if msg[0] == "error":
            self._broken = True
            raise RuntimeError(f"data-parallel worker {msg[1]} failed:\n{msg[2]}")
        losses[msg[1]] = msg[2]

    def _parent_wait(self, event, what: str, losses: dict[int, float]) -> None:
        deadline = time.monotonic() + self.timeout
        while not event.wait(0.02):
            self._drain_results(losses)
            if time.monotonic() > deadline:
                self._broken = True
                dead = [p.name for p in self._processes if not p.is_alive()]
                detail = f"; dead workers: {dead}" if dead else ""
                raise RuntimeError(
                    f"timed out after {self.timeout}s waiting for {what}{detail}"
                )

    def _step_process(self, batch: tuple[np.ndarray, ...]) -> float:
        if self._broken:
            raise RuntimeError("data-parallel pool is broken; create a new engine")
        # Validates divisibility and array-length agreement (views only).
        shard_batch(batch, self.num_workers)

        # Publish weights and batch; reset the per-step control plane.
        for view, p in zip(self._param_views, self._params):
            np.copyto(view, p.data)
        batch_layout = self._board.publish(batch)
        for name in ("ready_count", "chunks_done", "t_ready", "t_reduced",
                     "t_bwd_end"):
            self._ctrl[name][:] = 0
        self._ctrl["missing"][:] = 0
        for event in (*self._ready_events, *self._reduced_events):
            event.clear()

        for q in self._cmd_queues:
            q.put(("step", batch_layout))

        from ..telemetry import current_profiler

        losses: dict[int, float] = {}
        with current_profiler().op(
                "all_reduce", phase="comms",
                nbytes=self.layout.total_bytes * self.num_workers):
            # Parent-owned reduction (flat): drain buckets as they become
            # ready, while workers are still inside their backward passes.
            for b, plan in enumerate(self._chunk_plan):
                parent_chunks = [c for c in plan if c.owner == PARENT]
                if not parent_chunks:
                    continue
                self._parent_wait(self._ready_events[b], f"bucket {b} ready",
                                  losses)
                contribs = [self._grad_views[r][b]
                            for r in range(self.num_workers)]
                for chunk in parent_chunks:
                    reduce_chunk(self._out_views[b], contribs,
                                 chunk.start, chunk.stop)
                    self._mark_chunk_done(b)

            for b, event in enumerate(self._reduced_events):
                self._parent_wait(event, f"bucket {b} reduced", losses)
            while len(losses) < self.num_workers:
                try:
                    msg = self._result_q.get(timeout=self.timeout)
                except Exception:
                    self._broken = True
                    raise RuntimeError(
                        f"timed out after {self.timeout}s waiting for worker "
                        "results"
                    ) from None
                self._absorb_result(msg, losses)

            self._unpack_grads(self._out_views, self._ctrl["missing"])
        self._record_overlap_telemetry()
        self.optimizer.step()
        self.model.zero_grad()
        # Rank-ordered summation: the same sequential chain the in-process
        # engine's loss accumulation performs.
        total_loss = 0.0
        for rank in range(self.num_workers):
            total_loss += losses[rank]
        return total_loss / self.num_workers

    def _record_overlap_telemetry(self) -> None:
        if self.layout.num_buckets == 0:
            return
        metrics = current_metrics()
        t_ready = self._ctrl["t_ready"]
        t_reduced = self._ctrl["t_reduced"]
        latency = metrics.histogram("comms_bucket_latency_seconds",
                                    COMMS_LATENCY_BUCKETS)
        for b in range(self.layout.num_buckets):
            latency.observe(max(0.0, float(t_reduced[b] - t_ready[b])))
        metrics.counter("comms_bytes_reduced").inc(self.layout.total_bytes)
        last_reduced = float(t_reduced.max())
        last_backward = float(self._ctrl["t_bwd_end"].max())
        span = last_reduced - float(t_ready.min())
        if span > 0:
            tail = max(0.0, last_reduced - last_backward)
            overlap = min(1.0, max(0.0, 1.0 - tail / span))
            metrics.gauge("comms_overlap_fraction").set(overlap)

    # ------------------------------------------------------------------
    # Shared
    # ------------------------------------------------------------------

    def _unpack_grads(self, out_buffers: Sequence[np.ndarray],
                      missing: np.ndarray) -> None:
        """Install averaged gradients on the parent model's parameters."""
        reduced_elements = 0
        reduced_bytes = 0
        for i, p in enumerate(self._params):
            slot = self.layout.slots[i]
            if missing[:, i].all():
                # No worker produced a gradient — mirror the in-process
                # engine's p.grad = None.
                p.grad = None
                continue
            flat = out_buffers[slot.bucket][slot.offset:slot.offset + slot.size]
            p.grad = (flat / self.num_workers).reshape(slot.shape)
            reduced_elements += slot.size
            reduced_bytes += slot.size * slot.dtype.itemsize
        metrics = current_metrics()
        metrics.counter("allreduce_elements").inc(reduced_elements)
        metrics.counter("allreduce_bytes").inc(reduced_bytes)

    def step(self, batch: tuple[np.ndarray, ...]) -> float:
        """One global step; returns the mean loss across workers."""
        if self._closed:
            raise RuntimeError("engine is closed")
        tracer = current_tracer()
        start = time.perf_counter()
        with tracer.span("sharded_step", backend=self.backend,
                         algorithm=self.algorithm, num_workers=self.num_workers,
                         batch=len(batch[0])):
            if self.backend == "process":
                loss = self._step_process(batch)
            else:
                loss = self._step_inline(batch)
        current_metrics().histogram("comms_step_seconds").observe(
            time.perf_counter() - start)
        return loss

    def close(self) -> None:
        """Shut down the pool and release shared-memory segments."""
        if self._closed:
            return
        self._closed = True
        if self.backend == "process":
            if self._finalizer is not None:
                self._finalizer()
        else:
            self._writer.close()
        current_events().publish("comms_engine_stop", backend=self.backend,
                                 broken=self._broken)

    def __enter__(self) -> "ShardedDataParallel":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
