"""The campaign monitor: a terminal view built purely from files.

``repro monitor <campaign-dir>`` must work on a *live* campaign run by
another process, and post-mortem on a dead one — so this module reads
only the durable observability surface:

- ``campaign_journal.json`` — terminal per-cell results and the planned
  cell list (:mod:`repro.exec.journal` writes it atomically);
- ``heartbeats/*.json`` — each job's latest liveness record
  (:class:`~repro.telemetry.events.HeartbeatWriter`);
- ``events/*.jsonl`` — the merged lifecycle/progress timeline
  (:func:`~repro.telemetry.events.read_events`, truncation-tolerant).

No sockets, no shared state, no imports of the execution engine: the
monitor cannot crash a campaign and works on a copied directory.  ``now``
is an explicit parameter everywhere, so views are deterministic under
:class:`repro.core.timing.FakeClock` in tests.

Job states: ``pending`` (planned, no record or heartbeat yet),
``running`` (fresh running heartbeat), ``stalled`` (running heartbeat
older than the stall threshold), plus the journal's terminal/attempted
states ``reached`` / ``quality_miss`` / ``fault`` / ``timeout``.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from .events import (Event, EventCursor, Heartbeat, HeartbeatCache,
                     merge_event_streams, read_heartbeat)

__all__ = ["JobView", "MonitorView", "CampaignTailer", "DEFAULT_STALL_AFTER_S",
           "load_monitor_view", "build_view", "campaign_dir_problem",
           "render_monitor_view", "render_job_table"]

DEFAULT_STALL_AFTER_S = 30.0

# Journal states that cannot change without another scheduling decision.
_SETTLED = frozenset({"reached", "quality_miss", "fault", "timeout"})


@dataclass(frozen=True)
class JobView:
    """One (benchmark, seed) cell as the monitor sees it."""

    benchmark: str
    seed: int
    status: str
    attempts: int = 0
    epoch: int = 0
    step: float = 0.0
    quality: float | None = None
    time_to_train_s: float | None = None
    heartbeat_age_s: float | None = None
    stalled: bool = False
    error: str | None = None

    @property
    def key(self) -> str:
        return f"{self.benchmark}/{self.seed}"

    @property
    def active(self) -> bool:
        return self.status in ("running", "stalled")


@dataclass
class MonitorView:
    """Everything one refresh of the monitor knows."""

    jobs: list[JobView] = field(default_factory=list)
    campaign: dict[str, Any] = field(default_factory=dict)
    events: list[Event] = field(default_factory=list)
    now_s: float = 0.0
    stall_after_s: float = DEFAULT_STALL_AFTER_S

    def counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for job in self.jobs:
            counts[job.status] = counts.get(job.status, 0) + 1
        return counts

    @property
    def settled(self) -> bool:
        """True when no cell can still make progress without rescheduling."""
        return all(not j.active and j.status != "pending" for j in self.jobs)

    @property
    def stalled_jobs(self) -> list[JobView]:
        return [j for j in self.jobs if j.stalled]

    @property
    def remaining(self) -> int:
        """Cells that can still make progress."""
        return sum(1 for j in self.jobs
                   if j.status in ("pending", "running", "stalled"))

    def completion(self) -> tuple[int, int, float | None]:
        """(settled, total, fraction) — fraction None for empty campaigns.

        All math is guarded: a campaign with zero planned cells, or one
        where no job has made progress yet, yields None fractions, never
        a ZeroDivisionError (the monitor must survive attaching at t=0).
        """
        total = len(self.jobs)
        settled = sum(1 for j in self.jobs if j.status in _SETTLED)
        return settled, total, (settled / total) if total else None

    def rate_cells_per_s(self) -> float | None:
        """Finished cells per second of mean TTT; None before progress."""
        durations = [j.time_to_train_s for j in self.jobs
                     if j.time_to_train_s is not None]
        if not durations:
            return None
        mean = sum(durations) / len(durations)
        return (1.0 / mean) if mean > 0 else None

    def eta_s(self) -> float | None:
        """Naive remaining-work estimate: mean finished-cell TTT x cells left.

        Deliberately simple (ignores parallelism and per-benchmark cost
        skew); None until at least one cell finished with a duration.
        """
        durations = [j.time_to_train_s for j in self.jobs
                     if j.time_to_train_s is not None]
        if not durations or self.remaining == 0:
            return None
        return self.remaining * (sum(durations) / len(durations))


def _load_journal_doc(campaign_dir: Path) -> dict[str, Any]:
    """Read the journal JSON directly (no exec-engine import: files only)."""
    path = campaign_dir / "campaign_journal.json"
    if not path.is_file():
        return {}
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError:
        # A journal mid-replace can't be half-written (atomic rename), but
        # a foreign/corrupt file should degrade to "no journal", not crash
        # a monitor attached to a live run.
        return {}


def build_view(
    *,
    job_records: dict[str, dict[str, Any]],
    planned_cells: list[tuple[str, int]] | None = None,
    heartbeats: dict[str, Heartbeat] | None = None,
    campaign: dict[str, Any] | None = None,
    events: list[Event] | None = None,
    now_s: float,
    stall_after_s: float = DEFAULT_STALL_AFTER_S,
) -> MonitorView:
    """Fuse journal records, heartbeats, and the plan into one view.

    ``job_records`` maps ``benchmark/seed`` to journal-record dicts (the
    exact shape :class:`~repro.exec.journal.JobRecord` serializes to).
    This is the single state-derivation path — ``repro monitor`` feeds it
    from files and ``repro campaign`` feeds it from the in-memory journal,
    so both render identical tables.
    """
    heartbeats = heartbeats or {}
    cells: dict[tuple[str, int], None] = {}
    for benchmark, seed in planned_cells or []:
        cells[(benchmark, int(seed))] = None
    for key in job_records:
        benchmark, _, seed = key.rpartition("/")
        cells[(benchmark, int(seed))] = None
    for beat in heartbeats.values():
        cells[(beat.benchmark, beat.seed)] = None

    jobs: list[JobView] = []
    for benchmark, seed in sorted(cells):
        key = f"{benchmark}/{seed}"
        record = job_records.get(key)
        beat = heartbeats.get(key)
        status = record["status"] if record else "pending"
        attempts = int(record["attempts"]) if record else 0
        quality = record.get("quality") if record else None
        ttt = record.get("time_to_train_s") if record else None
        error = record.get("error") if record else None
        epoch = int(record["epochs"]) if record and record.get("epochs") else 0
        step = 0.0
        age = None
        stalled = False
        if beat is not None:
            age = beat.age_s(now_s)
            live = beat.status == "running"
            # A running heartbeat newer than the journal's last word means
            # a retry (or the first attempt) is in flight right now.
            if live and (record is None or status not in ("reached",)):
                stalled = age > stall_after_s
                status = "stalled" if stalled else "running"
                attempts = max(attempts, beat.attempt + 1)
                epoch = beat.epoch
                step = beat.step
                quality = beat.quality if beat.quality is not None else quality
        jobs.append(JobView(
            benchmark=benchmark, seed=seed, status=status, attempts=attempts,
            epoch=epoch, step=step, quality=quality,
            time_to_train_s=ttt, heartbeat_age_s=age, stalled=stalled,
            error=error,
        ))
    return MonitorView(jobs=jobs, campaign=dict(campaign or {}),
                       events=list(events or []), now_s=now_s,
                       stall_after_s=stall_after_s)


def load_monitor_view(
    campaign_dir: str | Path,
    *,
    now_s: float | None = None,
    stall_after_s: float = DEFAULT_STALL_AFTER_S,
) -> MonitorView:
    """Build a view from a campaign directory's files alone."""
    campaign_dir = Path(campaign_dir)
    now_s = time.time() if now_s is None else float(now_s)

    doc = _load_journal_doc(campaign_dir)
    campaign = dict(doc.get("campaign", {}))
    job_records = {key: dict(rec) for key, rec in doc.get("jobs", {}).items()}
    planned = [(str(b), int(s)) for b, s in campaign.get("planned_cells", [])]

    heartbeats: dict[str, Heartbeat] = {}
    hb_dir = campaign_dir / "heartbeats"
    if hb_dir.is_dir():
        for path in sorted(hb_dir.glob("*.json")):
            beat = read_heartbeat(path)
            if beat is not None:
                heartbeats[beat.key] = beat

    events_dir = campaign_dir / "events"
    events = (merge_event_streams(sorted(events_dir.glob("*.jsonl")))
              if events_dir.is_dir() else [])

    return build_view(job_records=job_records, planned_cells=planned,
                      heartbeats=heartbeats, campaign=campaign, events=events,
                      now_s=now_s, stall_after_s=stall_after_s)


def campaign_dir_problem(campaign_dir: str | Path) -> str | None:
    """Human-readable reason this directory cannot be monitored, or None.

    ``repro monitor`` / ``repro alerts`` pointed at a typo'd or not-yet-
    provisioned path should say so in one line and exit nonzero, not
    unwind a traceback.  A directory counts as a campaign once any of its
    observability surfaces exists (journal, events, heartbeats).
    """
    campaign_dir = Path(campaign_dir)
    if not campaign_dir.exists():
        return f"{campaign_dir}: no such campaign directory"
    if not campaign_dir.is_dir():
        return f"{campaign_dir}: not a directory"
    has_journal = (campaign_dir / "campaign_journal.json").is_file()
    has_events = any((campaign_dir / "events").glob("*.jsonl")) \
        if (campaign_dir / "events").is_dir() else False
    has_beats = any((campaign_dir / "heartbeats").glob("*.json")) \
        if (campaign_dir / "heartbeats").is_dir() else False
    if not (has_journal or has_events or has_beats):
        return (f"{campaign_dir}: not a campaign directory (no "
                f"campaign_journal.json, events/, or heartbeats/)")
    return None


class CampaignTailer:
    """Incremental :func:`load_monitor_view` for pollers.

    ``load_monitor_view`` re-reads every file on every call — correct for
    one-shot ``repro monitor``, quadratic for ``--watch`` and the
    observability server.  The tailer keeps an
    :class:`~repro.telemetry.events.EventCursor` per stream (new streams
    are discovered each refresh), a
    :class:`~repro.telemetry.events.HeartbeatCache`, and a signature-
    checked journal parse, so a refresh over a quiet campaign costs only
    ``stat`` calls and already-consumed JSONL bytes are never re-read.

    The accumulated timeline (``self.events``) matches what
    :func:`~repro.telemetry.events.merge_event_streams` would return for
    the same files, in the same ``(time_s, pid)`` order.
    """

    def __init__(self, campaign_dir: str | Path,
                 stall_after_s: float = DEFAULT_STALL_AFTER_S):
        self.campaign_dir = Path(campaign_dir)
        self.stall_after_s = float(stall_after_s)
        self.events: list[Event] = []
        self._cursors: dict[Path, EventCursor] = {}
        self._beats = HeartbeatCache()
        self._journal_sig: tuple[int, int, int] | None = None
        self._journal_doc: dict[str, Any] = {}

    @property
    def consumed_bytes(self) -> int:
        """Total event-stream bytes ever handed to the parser."""
        return sum(c.consumed_bytes for c in self._cursors.values())

    def poll_events(self) -> list[Event]:
        """Consume newly-completed events from every stream (sorted)."""
        events_dir = self.campaign_dir / "events"
        if events_dir.is_dir():
            for path in sorted(events_dir.glob("*.jsonl")):
                if path not in self._cursors:
                    self._cursors[path] = EventCursor(path)
        fresh: list[Event] = []
        for path in sorted(self._cursors):
            fresh.extend(self._cursors[path].poll())
        fresh.sort(key=lambda e: (e.time_s, e.pid))
        if fresh:
            if self.events and fresh[0].time_s < self.events[-1].time_s:
                # A slow stream delivered events older than the merged
                # tail; re-sort (stable, so same-instant order holds).
                self.events.extend(fresh)
                self.events.sort(key=lambda e: (e.time_s, e.pid))
            else:
                self.events.extend(fresh)
        return fresh

    def _journal(self) -> dict[str, Any]:
        path = self.campaign_dir / "campaign_journal.json"
        try:
            stat = os.stat(path)
        except OSError:
            self._journal_sig, self._journal_doc = None, {}
            return self._journal_doc
        signature = (stat.st_mtime_ns, stat.st_size, stat.st_ino)
        if signature != self._journal_sig:
            self._journal_doc = _load_journal_doc(self.campaign_dir)
            self._journal_sig = signature
        return self._journal_doc

    def refresh(self, now_s: float | None = None) -> MonitorView:
        """One poll: absorb new data, return the current view."""
        now_s = time.time() if now_s is None else float(now_s)
        self.poll_events()
        doc = self._journal()
        campaign = dict(doc.get("campaign", {}))
        job_records = {key: dict(rec)
                       for key, rec in doc.get("jobs", {}).items()}
        planned = [(str(b), int(s))
                   for b, s in campaign.get("planned_cells", [])]
        heartbeats: dict[str, Heartbeat] = {}
        hb_dir = self.campaign_dir / "heartbeats"
        if hb_dir.is_dir():
            for path in sorted(hb_dir.glob("*.json")):
                beat = self._beats.read(path)
                if beat is not None:
                    heartbeats[beat.key] = beat
        return build_view(job_records=job_records, planned_cells=planned,
                          heartbeats=heartbeats, campaign=campaign,
                          events=self.events, now_s=now_s,
                          stall_after_s=self.stall_after_s)


def _fmt(value: float | None, spec: str, empty: str = "-") -> str:
    return empty if value is None else format(value, spec)


def render_job_table(jobs: list[JobView]) -> str:
    """One row per cell — the table ``monitor`` and ``campaign`` share."""
    header = (
        f"{'Job':<32}{'Status':<14}{'Att':>4}{'Epoch':>6}{'Step':>8}"
        f"{'Quality':>9}{'TTT (s)':>9}  Heartbeat"
    )
    lines = [header, "-" * len(header)]
    for job in jobs:
        status = job.status.upper() if job.stalled else job.status
        beat = ("-" if job.heartbeat_age_s is None
                else f"{job.heartbeat_age_s:.1f}s ago")
        step = "-" if not job.step else f"{job.step:g}"
        lines.append(
            f"{job.key:<32}{status:<14}{job.attempts:>4}{job.epoch:>6}"
            f"{step:>8}{_fmt(job.quality, '.4f'):>9}"
            f"{_fmt(job.time_to_train_s, '.3f'):>9}  {beat}"
        )
    return "\n".join(lines)


def render_monitor_view(view: MonitorView, *, recent_events: int = 6) -> str:
    """The full refreshable screen: summary line, job table, event tail."""
    counts = view.counts()
    summary = " ".join(f"{name}={counts[name]}" for name in
                       ("reached", "running", "stalled", "pending",
                        "quality_miss", "fault", "timeout") if name in counts)
    benchmarks = view.campaign.get("benchmarks")
    head = (f"campaign: {len(benchmarks)} benchmark(s), " if benchmarks
            else "campaign: ") + f"{len(view.jobs)} cell(s)  [{summary or 'empty'}]"
    lines = [head]
    settled, total, fraction = view.completion()
    if total:
        pct = "--" if fraction is None else f"{100.0 * fraction:.0f}%"
        rate = view.rate_cells_per_s()
        rate_txt = "--" if rate is None else f"{rate:.3g} cells/s"
        lines.append(f"  progress {settled}/{total} ({pct}), rate {rate_txt}")
    if view.remaining:
        eta = view.eta_s()
        # Before any cell has finished there is no basis for an estimate;
        # render "--" rather than guessing (or crashing on empty math).
        lines.append(f"  eta ~{eta:.1f}s (mean finished-cell TTT x cells left)"
                     if eta is not None else "  eta ~--s (no finished cell yet)")
    if view.stalled_jobs:
        lines.append(
            f"  STALL: {len(view.stalled_jobs)} job(s) without a heartbeat "
            f"for > {view.stall_after_s:.0f}s"
        )
    lines.append("")
    lines.append(render_job_table(view.jobs))
    if view.events and recent_events > 0:
        lines.append("")
        lines.append(f"recent events (last {min(recent_events, len(view.events))} "
                     f"of {len(view.events)}):")
        for event in view.events[-recent_events:]:
            args = " ".join(f"{k}={event.args[k]}" for k in sorted(event.args))
            lines.append(f"  t={event.time_s:.3f} pid={event.pid} "
                         f"{event.name} {args}".rstrip())
    return "\n".join(lines)
