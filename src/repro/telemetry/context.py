"""Ambient telemetry: the active tracer/metrics pair for this context.

Instrumentation sites live deep inside the suite, the framework, and the
data-parallel engine — threading a tracer argument through every layer
would couple all of them to observability concerns.  Instead one
:class:`Telemetry` session is *activated* for the dynamic extent of a run
(a ``contextvars.ContextVar``, so it composes with threads), and hot-path
code reaches it via :func:`current_tracer` / :func:`current_metrics`.

The default, when nothing is activated, is a disabled tracer and the null
registry: every probe collapses to an attribute check and a no-op call.
"""

from __future__ import annotations

import contextlib
from contextvars import ContextVar

from .events import EventBus
from .metrics import NULL_METRICS, MetricsRegistry
from .opprof import OpProfiler
from .trace import Tracer

__all__ = ["Telemetry", "activate", "current_telemetry", "current_tracer",
           "current_metrics", "current_events", "current_profiler"]

_UNSET = object()


class Telemetry:
    """One observability session: tracer, metrics registry, and event bus.

    ``events_clock`` times published events; it defaults to ``time.time``
    (epoch seconds — the only clock comparable across worker processes)
    rather than the tracer's ``clock``, which is usually a perf counter.
    Tests inject a :class:`~repro.core.timing.FakeClock` for both.
    """

    def __init__(self, clock=None, enabled: bool = True, pid: int = 0,
                 process_name: str | None = None,
                 thread_name: str | None = None,
                 events_clock=None, profile: str | None = None,
                 profile_every: int | None = None):
        self.enabled = enabled
        self.tracer = Tracer(clock=clock, enabled=enabled, pid=pid,
                             process_name=process_name,
                             thread_name=thread_name)
        self.metrics = MetricsRegistry(enabled=enabled) if enabled else NULL_METRICS
        self.events = EventBus(clock=events_clock, enabled=enabled, pid=pid)
        # ``profile=None`` defers to REPRO_PROFILE (default "off"), so a
        # session created without opinion stays zero-overhead.
        self.profiler = OpProfiler(mode=profile, sample_every=profile_every,
                                   enabled=enabled)

    @contextlib.contextmanager
    def activate(self):
        """Make this session the ambient one for the enclosed extent.

        When profiling is on, the framework's tensor-allocation tracker is
        installed for the same extent so per-phase memory accounting works
        without the framework importing telemetry at load time.
        """
        token = _ACTIVE.set(self)
        prev_tracker = _UNSET
        if self.profiler.mode != "off":
            from ..framework.tensor import set_alloc_tracker

            prev_tracker = set_alloc_tracker(self.profiler.note_alloc)
        try:
            yield self
        finally:
            if prev_tracker is not _UNSET:
                from ..framework.tensor import set_alloc_tracker

                set_alloc_tracker(prev_tracker)
            _ACTIVE.reset(token)

    @staticmethod
    def disabled() -> "Telemetry":
        """The shared no-op session (what runs get when not observed)."""
        return _DISABLED


_DISABLED = Telemetry(enabled=False)
_ACTIVE: ContextVar[Telemetry] = ContextVar("repro_telemetry", default=_DISABLED)


def current_telemetry() -> Telemetry:
    """The ambient session (the disabled singleton when none is active)."""
    return _ACTIVE.get()


def current_tracer() -> Tracer:
    return _ACTIVE.get().tracer


def current_metrics() -> MetricsRegistry:
    return _ACTIVE.get().metrics


def current_events() -> EventBus:
    return _ACTIVE.get().events


def current_profiler() -> OpProfiler:
    return _ACTIVE.get().profiler


def activate(telemetry: Telemetry):
    """Module-level alias: ``with activate(t): ...``."""
    return telemetry.activate()
