"""Ambient telemetry: the active tracer/metrics pair for this context.

Instrumentation sites live deep inside the suite, the framework, and the
data-parallel engine — threading a tracer argument through every layer
would couple all of them to observability concerns.  Instead one
:class:`Telemetry` session is *activated* for the dynamic extent of a run
(a ``contextvars.ContextVar``, so it composes with threads), and hot-path
code reaches it via :func:`current_tracer` / :func:`current_metrics`.

The default, when nothing is activated, is a disabled tracer and the null
registry: every probe collapses to an attribute check and a no-op call.
"""

from __future__ import annotations

import contextlib
from contextvars import ContextVar

from .events import EventBus
from .metrics import NULL_METRICS, MetricsRegistry
from .trace import Tracer

__all__ = ["Telemetry", "activate", "current_telemetry", "current_tracer",
           "current_metrics", "current_events"]


class Telemetry:
    """One observability session: tracer, metrics registry, and event bus.

    ``events_clock`` times published events; it defaults to ``time.time``
    (epoch seconds — the only clock comparable across worker processes)
    rather than the tracer's ``clock``, which is usually a perf counter.
    Tests inject a :class:`~repro.core.timing.FakeClock` for both.
    """

    def __init__(self, clock=None, enabled: bool = True, pid: int = 0,
                 process_name: str | None = None,
                 thread_name: str | None = None,
                 events_clock=None):
        self.enabled = enabled
        self.tracer = Tracer(clock=clock, enabled=enabled, pid=pid,
                             process_name=process_name,
                             thread_name=thread_name)
        self.metrics = MetricsRegistry(enabled=enabled) if enabled else NULL_METRICS
        self.events = EventBus(clock=events_clock, enabled=enabled, pid=pid)

    @contextlib.contextmanager
    def activate(self):
        """Make this session the ambient one for the enclosed extent."""
        token = _ACTIVE.set(self)
        try:
            yield self
        finally:
            _ACTIVE.reset(token)

    @staticmethod
    def disabled() -> "Telemetry":
        """The shared no-op session (what runs get when not observed)."""
        return _DISABLED


_DISABLED = Telemetry(enabled=False)
_ACTIVE: ContextVar[Telemetry] = ContextVar("repro_telemetry", default=_DISABLED)


def current_telemetry() -> Telemetry:
    """The ambient session (the disabled singleton when none is active)."""
    return _ACTIVE.get()


def current_tracer() -> Tracer:
    return _ACTIVE.get().tracer


def current_metrics() -> MetricsRegistry:
    return _ACTIVE.get().metrics


def current_events() -> EventBus:
    return _ACTIVE.get().events


def activate(telemetry: Telemetry):
    """Module-level alias: ``with activate(t): ...``."""
    return telemetry.activate()
