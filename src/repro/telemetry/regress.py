"""Benchmark-over-benchmark regression gating (``repro bench-diff``).

MLPerf's own v0.5 → v0.6 evaluation (the paper's Fig 4) is a regression
comparison between benchmark rounds; this module applies the same idea to
our recorded perf reports.  Each ``BENCH_*.json`` carries a ``schema``
field; per schema we declare which metrics gate, in which direction, and
with what tolerance band:

- **exact** metrics (bit-identity flags, campaign shape) must match —
  these encode correctness, not speed, and have zero legitimate variance;
- **lower-is-better** counts (faults, timeouts) may not rise past
  ``baseline * (1 + rel_tol) + abs_tol``;
- **higher-is-better** rates (speedups, hit rates) may not fall below
  ``baseline * (1 - rel_tol) - abs_tol``.

Timing-derived metrics default to generous relative bands because CI
hosts differ from the machines baselines were recorded on: the gate is
for *regressions a PR causes*, not for machine-to-machine noise.  CI runs
the ``bench-* --smoke`` harnesses and diffs their fresh reports against
the committed ``benchmarks/reports/`` baselines; a non-zero exit fails
the build.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path
from typing import Any

__all__ = ["MetricSpec", "RegressionRow", "RegressionReport",
           "AttributionRow", "SCHEMA_METRICS", "compare_reports",
           "load_report", "attribute_regression"]


@dataclass(frozen=True)
class MetricSpec:
    """How one metric in a report is gated against its baseline."""

    path: str  # dotted path into the JSON payload, e.g. "arena.hit_rate"
    direction: str  # "exact" | "higher" | "lower"
    rel_tol: float = 0.0
    abs_tol: float = 0.0

    def __post_init__(self):
        if self.direction not in ("exact", "higher", "lower"):
            raise ValueError(f"unknown direction {self.direction!r}")
        if self.rel_tol < 0 or self.abs_tol < 0:
            raise ValueError("tolerances must be non-negative")

    def bound(self, baseline: float) -> float:
        """The worst acceptable current value given the baseline."""
        if self.direction == "higher":
            return baseline * (1.0 - self.rel_tol) - self.abs_tol
        if self.direction == "lower":
            return baseline * (1.0 + self.rel_tol) + self.abs_tol
        return baseline


# The gate declarations, per report schema.  Correctness flags are exact;
# operational counts are tight; timing ratios get wide rel_tol bands.
SCHEMA_METRICS: dict[str, tuple[MetricSpec, ...]] = {
    "repro-campaign-bench/1": (
        MetricSpec("total_cells", "exact"),
        MetricSpec("faults", "lower"),
        MetricSpec("timeouts", "lower"),
        MetricSpec("quality_misses", "lower"),
        MetricSpec("retries", "lower", abs_tol=2),
        MetricSpec("speedup", "higher", rel_tol=0.5),
    ),
    "repro.bench_kernels.v1": (
        MetricSpec("checks.bit_identical", "exact"),
        MetricSpec("arena.hit_rate", "higher", abs_tol=0.05),
        MetricSpec("arena.steady_state_bytes_allocated", "lower"),
        MetricSpec("checks.conv_speedup", "higher", rel_tol=0.5),
    ),
    "repro.bench_comms.v1": (
        MetricSpec("checks.bit_identical", "exact"),
        MetricSpec("checks.best_speedup_by_workers.2", "higher", rel_tol=0.5),
    ),
    # Compiled step executor: bit-identity, zero fallbacks on fixed-shape
    # workloads, and a perfect plan-cache hit rate after first sighting are
    # mechanism invariants (exact); the whole-step speedup gets the
    # standard wide timing band on top of the committed baseline.
    "repro.bench_step.v1": (
        MetricSpec("checks.bit_identical", "exact"),
        MetricSpec("checks.fallbacks", "exact"),
        MetricSpec("checks.hit_rate_after_first", "exact"),
        MetricSpec("checks.best_speedup", "higher", rel_tol=0.5),
    ),
    # Profiler overhead: the sampled-mode ratio is the acceptance gate
    # (documented < 5%; the band absorbs CI-host timing noise on top of
    # the committed baseline's own ratio).
    "repro.bench_profile.v1": (
        MetricSpec("checks.ops_recorded", "exact"),
        MetricSpec("checks.sampled_overhead", "lower", rel_tol=0.10,
                   abs_tol=0.05),
        MetricSpec("checks.off_overhead", "lower", rel_tol=0.10,
                   abs_tol=0.05),
    ),
    # Serving harness: verdicts and same-seed determinism are exact (the
    # smoke runs in virtual timing, so they are machine-independent); the
    # searched max-QPS floor gets the standard wide timing band.
    "repro.bench_loadgen.v1": (
        MetricSpec("checks.all_valid", "exact"),
        MetricSpec("checks.deterministic", "exact"),
        MetricSpec("checks.scenario_count", "exact"),
        MetricSpec("checks.min_server_max_qps", "higher", rel_tol=0.5),
    ),
}


@dataclass(frozen=True)
class RegressionRow:
    """One gated metric's verdict."""

    path: str
    direction: str
    baseline: Any
    current: Any
    bound: Any
    ok: bool
    note: str = ""


@dataclass(frozen=True)
class AttributionRow:
    """One op's contribution to a flagged timing regression.

    Shares are fractions of the payload's total per-op time; the ranking
    key is ``delta_share`` (how much of the pie the op *took over*), so a
    uniformly-slower machine attributes to nothing while a genuinely
    regressed op rises to the top.
    """

    op: str
    baseline_ns: float
    current_ns: float
    baseline_share: float
    current_share: float
    delta_share: float


@dataclass
class RegressionReport:
    """Every gated metric's verdict for one (report, baseline) pair."""

    schema: str
    rows: list[RegressionRow] = field(default_factory=list)
    attribution: list[AttributionRow] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(row.ok for row in self.rows)

    @property
    def regressions(self) -> list[RegressionRow]:
        return [row for row in self.rows if not row.ok]

    def to_payload(self) -> dict[str, Any]:
        """Machine-readable gate result (``bench-diff --json``)."""
        return {
            "schema_gated": self.schema,
            "ok": self.ok,
            "rows": [asdict(row) for row in self.rows],
            "regressions": [row.path for row in self.regressions],
            "attribution": [asdict(row) for row in self.attribution],
        }

    def render(self) -> str:
        header = (
            f"{'Metric':<40}{'Dir':<8}{'Baseline':>12}{'Current':>12}"
            f"{'Bound':>12}  Verdict"
        )
        lines = [f"schema: {self.schema}", header, "-" * len(header)]
        for row in self.rows:
            verdict = "ok" if row.ok else "REGRESSED"
            if row.note:
                verdict += f" ({row.note})"
            lines.append(
                f"{row.path:<40}{row.direction:<8}{_fmt(row.baseline):>12}"
                f"{_fmt(row.current):>12}{_fmt(row.bound):>12}  {verdict}"
            )
        lines.append(
            f"{len(self.rows)} metric(s) gated, "
            f"{len(self.regressions)} regression(s)"
        )
        if self.attribution:
            lines.append("attribution (op share of recorded time, "
                         "baseline -> current):")
            for row in self.attribution:
                lines.append(
                    f"  {row.op:<38}{100 * row.baseline_share:>6.1f}% ->"
                    f"{100 * row.current_share:>6.1f}%  "
                    f"(delta {100 * row.delta_share:+.1f}pp, "
                    f"{row.baseline_ns / 1e6:.2f} -> "
                    f"{row.current_ns / 1e6:.2f} ms)"
                )
        return "\n".join(lines)


def _fmt(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def _lookup(payload: dict[str, Any], path: str) -> Any:
    node: Any = payload
    for part in path.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def _op_times(payload: dict[str, Any]) -> dict[str, float]:
    """Per-op nanosecond totals from whatever timing table a report has.

    Preference order: an attached ``op_profile`` (``phase/op`` keys,
    self-time so nesting never double counts), else the kernel bench's
    per-kernel ``ns_per_op`` table.  Empty dict when the payload carries
    neither — attribution is then simply unavailable.
    """
    prof = payload.get("op_profile")
    if isinstance(prof, dict) and prof.get("ops"):
        times: dict[str, float] = {}
        for phase, ops in prof["ops"].items():
            for name, stat in ops.items():
                if isinstance(stat, dict):
                    times[f"{phase}/{name}"] = float(
                        stat.get("self_ns", stat.get("total_ns", 0)))
        return times
    kernels = payload.get("kernels")
    if isinstance(kernels, dict):
        return {name: float(entry["ns_per_op"])
                for name, entry in kernels.items()
                if isinstance(entry, dict) and "ns_per_op" in entry}
    return {}


def attribute_regression(
    current: dict[str, Any],
    baseline: dict[str, Any],
    *,
    top: int = 5,
    min_delta_share: float = 0.01,
) -> list[AttributionRow]:
    """Rank ops by how much their share of total op time *grew*.

    Share-of-total comparison deliberately cancels machine speed: if the
    CI host is uniformly 2x slower, every op keeps its share and nothing
    is attributed; an op whose kernel regressed takes over a bigger
    slice.  Ops below ``min_delta_share`` (1pp by default) are noise and
    dropped; ties break alphabetically so output is deterministic.
    """
    cur, base = _op_times(current), _op_times(baseline)
    cur_total, base_total = sum(cur.values()), sum(base.values())
    if cur_total <= 0 or base_total <= 0:
        return []
    rows = []
    for op in sorted(set(cur) | set(base)):
        b_ns, c_ns = base.get(op, 0.0), cur.get(op, 0.0)
        b_share, c_share = b_ns / base_total, c_ns / cur_total
        delta = c_share - b_share
        if delta >= min_delta_share:
            rows.append(AttributionRow(
                op=op, baseline_ns=b_ns, current_ns=c_ns,
                baseline_share=b_share, current_share=c_share,
                delta_share=delta))
    rows.sort(key=lambda r: (-r.delta_share, r.op))
    return rows[:top]


def load_report(path: str | Path) -> dict[str, Any]:
    """Read a BENCH_*.json payload; the schema field is mandatory."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(payload, dict) or "schema" not in payload:
        raise ValueError(f"{path}: not a bench report (no 'schema' field)")
    return payload


def compare_reports(
    current: dict[str, Any],
    baseline: dict[str, Any],
    *,
    tolerance_overrides: dict[str, float] | None = None,
) -> RegressionReport:
    """Gate a fresh report against its committed baseline.

    Both payloads must carry the same ``schema`` (comparing a kernels
    report against a comms baseline is a usage error, not a regression).
    ``tolerance_overrides`` maps metric path → relative tolerance,
    replacing the declared band for that metric.
    """
    schema = current.get("schema")
    if schema != baseline.get("schema"):
        raise ValueError(
            f"schema mismatch: report is {schema!r}, "
            f"baseline is {baseline.get('schema')!r}"
        )
    specs = SCHEMA_METRICS.get(schema)
    if specs is None:
        raise ValueError(f"no regression gates declared for schema {schema!r}")

    overrides = tolerance_overrides or {}
    unknown = set(overrides) - {spec.path for spec in specs}
    if unknown:
        raise ValueError(f"tolerance override(s) for ungated metric(s): "
                         f"{sorted(unknown)}")

    report = RegressionReport(schema=schema)
    for spec in specs:
        if spec.path in overrides:
            spec = replace(spec, rel_tol=float(overrides[spec.path]))
        base_value = _lookup(baseline, spec.path)
        cur_value = _lookup(current, spec.path)
        if base_value is None:
            # Baselines predating a metric don't gate it yet; recording a
            # fresh baseline picks it up.
            report.rows.append(RegressionRow(
                spec.path, spec.direction, None, cur_value, None, True,
                note="no baseline value"))
            continue
        if cur_value is None:
            report.rows.append(RegressionRow(
                spec.path, spec.direction, base_value, None, base_value,
                False, note="missing from report"))
            continue
        if spec.direction == "exact":
            ok = cur_value == base_value
            report.rows.append(RegressionRow(
                spec.path, spec.direction, base_value, cur_value, base_value, ok))
            continue
        base_num, cur_num = float(base_value), float(cur_value)
        bound = spec.bound(base_num)
        ok = cur_num >= bound if spec.direction == "higher" else cur_num <= bound
        report.rows.append(RegressionRow(
            spec.path, spec.direction, base_num, cur_num, bound, ok))
    # A flagged regression gets attributed to the ops whose share of the
    # recorded op time moved — *which* kernel got slower, not just that
    # something did.  Needs op timing tables on both sides.
    if not report.ok:
        report.attribution = attribute_regression(current, baseline)
    return report
