"""The live observability server: HTTP over the telemetry file streams.

``repro serve-metrics <root>`` turns the pull-only campaign surfaces
(journal, ``events/*.jsonl``, ``heartbeats/*.json``, result files) into a
service without adding a single runtime dependency — everything is
``http.server`` + the same file-only views the monitor uses, so the
server can watch campaigns run by *other* processes and cannot crash
them.

Endpoints:

``/metrics``
    Prometheus text exposition (:mod:`repro.telemetry.export`): merged
    run metrics per campaign, job-state gauges, firing alerts, and the
    server's own tailing counters.
``/api/campaigns``, ``/api/campaigns/<id>``, ``/api/campaigns/<id>/jobs``
    JSON monitor views (the ``repro monitor`` table as data).
``/api/runs/<campaign>/<benchmark>/<seed>/series``
    The run's sampled :class:`RunSeries` columns from its result file.
``/api/alerts``
    Currently-firing alerts plus the recent transition log.
``/events``
    Server-Sent Events: every newly-consumed telemetry event and alert
    transition, fed from an in-memory ring buffer — SSE fan-out never
    re-reads files, preserving the cursor layer's zero re-read property.

Incrementality is structural: each campaign is tailed by a
:class:`~repro.telemetry.monitor.CampaignTailer` (offset-tracking
:class:`~repro.telemetry.events.EventCursor` per stream), folded once
into alert state, and shared by every endpoint.  A refresh of a quiet
campaign costs ``stat`` calls only.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from pathlib import Path
from typing import Any, Callable, Iterable
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from .alerts import AlertEngine, AlertRule, StreamFold
from .events import Event, EventLog
from .export import (EXPOSITION_CONTENT_TYPE, alert_lines, render_exposition,
                     snapshot_lines, view_lines)
from .metrics import MetricsRegistry, merge_snapshots
from .monitor import (DEFAULT_STALL_AFTER_S, CampaignTailer, MonitorView,
                      campaign_dir_problem)

__all__ = ["ObservabilityServer", "discover_campaign_dirs", "ALERTS_LOG_NAME"]

ALERTS_LOG_NAME = "alerts.jsonl"

# SSE ring depth: late subscribers replay at most this much history.
_RING_DEPTH = 2048


def discover_campaign_dirs(root: str | Path) -> dict[str, Path]:
    """Map campaign id -> directory under ``root``.

    ``root`` may itself be a campaign directory (id = its name) or a
    directory of campaign directories — the layout a campaign service
    accumulates.  Anything :func:`campaign_dir_problem` rejects is
    skipped, not fatal: the server must boot next to half-provisioned
    directories.
    """
    root = Path(root)
    if campaign_dir_problem(root) is None:
        return {root.name or "campaign": root}
    found: dict[str, Path] = {}
    if root.is_dir():
        for child in sorted(root.iterdir()):
            if child.is_dir() and campaign_dir_problem(child) is None:
                found[child.name] = child
    return found


class _CampaignState:
    """One tailed campaign: cursors, alert fold, latest view, run cache."""

    def __init__(self, campaign_id: str, directory: Path, *,
                 rules: Iterable[AlertRule] | None,
                 stall_after_s: float, write_alerts: bool):
        self.id = campaign_id
        self.directory = directory
        self.tailer = CampaignTailer(directory, stall_after_s=stall_after_s)
        self.fold = StreamFold()
        sink = None
        if write_alerts:
            self._alerts_log = EventLog(directory / ALERTS_LOG_NAME)
            sink = self._alerts_log.write
        else:
            self._alerts_log = None
        self.engine = AlertEngine(rules, sink=sink)
        self.view: MonitorView | None = None
        self.transitions: deque[Event] = deque(maxlen=_RING_DEPTH)
        self._series_cache: dict[str, tuple[float, dict[str, Any]]] = {}

    def refresh(self, now_s: float) -> list[Event]:
        """Tail, fold, evaluate; return fresh events + alert transitions."""
        fresh = self.tailer.poll_events()
        self.view = self.tailer.refresh(now_s)
        self.fold.apply_all(fresh)
        self.fold.absorb_view(self.view)
        new = self.engine.evaluate(self.fold.context(now_s))
        self.transitions.extend(new)
        return fresh + new

    def close(self) -> None:
        if self._alerts_log is not None:
            self._alerts_log.close()

    # -- result-file access (mtime-cached; headers only, no ndarray load) --
    def run_header(self, benchmark: str, seed: str) -> dict[str, Any] | None:
        rel = f"jobs/{benchmark}/seed_{seed}.txt"
        path = self.directory / rel
        try:
            mtime = path.stat().st_mtime_ns
        except OSError:
            self._series_cache.pop(rel, None)
            return None
        cached = self._series_cache.get(rel)
        if cached is not None and cached[0] == mtime:
            return cached[1]
        with open(path, "r", encoding="utf-8", errors="replace") as fh:
            first = fh.readline()
        prefix = "# repro-run "
        if not first.startswith(prefix):
            return None
        try:
            header = json.loads(first[len(prefix):])
        except json.JSONDecodeError:
            return None
        self._series_cache[rel] = (mtime, header)
        return header

    def metric_snapshots(self) -> list[dict[str, Any]]:
        """Every completed job's metrics snapshot (for /metrics merging)."""
        snaps: list[dict[str, Any]] = []
        jobs_dir = self.directory / "jobs"
        if not jobs_dir.is_dir():
            return snaps
        for path in sorted(jobs_dir.glob("*/seed_*.txt")):
            header = self.run_header(path.parent.name,
                                     path.stem.removeprefix("seed_"))
            if header and header.get("metrics"):
                snaps.append(header["metrics"])
        return snaps


class ObservabilityServer:
    """Shared state + HTTP front for ``repro serve-metrics``.

    ``clock`` is injectable (FakeClock in tests) and is the only time
    source for views and alert stamps; ``min_refresh_s`` coalesces
    concurrent scrapes so N dashboards do not multiply file polls.
    """

    def __init__(self, root: str | Path, *,
                 host: str = "127.0.0.1", port: int = 0,
                 rules: Iterable[AlertRule] | None = None,
                 stall_after_s: float = DEFAULT_STALL_AFTER_S,
                 clock: Callable[[], float] | None = None,
                 min_refresh_s: float = 0.5,
                 poll_interval_s: float = 1.0,
                 write_alerts: bool = True):
        self.root = Path(root)
        self.host, self.port = host, port
        self.rules = list(rules) if rules is not None else None
        self.stall_after_s = float(stall_after_s)
        self.clock = clock or time.time
        self.min_refresh_s = float(min_refresh_s)
        self.poll_interval_s = float(poll_interval_s)
        self.write_alerts = write_alerts
        self.metrics = MetricsRegistry()
        self.campaigns: dict[str, _CampaignState] = {}
        self._lock = threading.Lock()
        self._last_refresh: float | None = None
        # SSE ring: (seq, campaign_id, event) with a condition to wake
        # streaming clients the instant a refresh produces anything new.
        self._ring: deque[tuple[int, str, Event]] = deque(maxlen=_RING_DEPTH)
        self._seq = 0
        self._ring_cond = threading.Condition()
        self._httpd: ThreadingHTTPServer | None = None

    # -- state ---------------------------------------------------------------
    def _discover(self) -> None:
        for cid, directory in discover_campaign_dirs(self.root).items():
            if cid not in self.campaigns:
                self.campaigns[cid] = _CampaignState(
                    cid, directory, rules=self.rules,
                    stall_after_s=self.stall_after_s,
                    write_alerts=self.write_alerts)

    def refresh(self, force: bool = False) -> None:
        """Poll every campaign once (coalesced under ``min_refresh_s``)."""
        with self._lock:
            now = float(self.clock())
            if (not force and self._last_refresh is not None
                    and now - self._last_refresh < self.min_refresh_s):
                return
            self._last_refresh = now
            self._discover()
            self.metrics.counter("server_polls").inc()
            published: list[tuple[int, str, Event]] = []
            for cid in sorted(self.campaigns):
                state = self.campaigns[cid]
                for event in state.refresh(now):
                    self._seq += 1
                    published.append((self._seq, cid, event))
                self.metrics.gauge(f"server_consumed_bytes_{cid}").set(
                    state.tailer.consumed_bytes)
            if published:
                self.metrics.counter("server_events_published").inc(
                    len(published))
        if published:
            with self._ring_cond:
                self._ring.extend(published)
                self._ring_cond.notify_all()

    # -- views ---------------------------------------------------------------
    def metrics_text(self) -> str:
        self.refresh()
        sections: list[list[str]] = []
        with self._lock:
            for cid in sorted(self.campaigns):
                state = self.campaigns[cid]
                if state.view is not None:
                    sections.append(view_lines(state.view, cid))
                sections.append(alert_lines(state.engine.active(), cid))
                merged = merge_snapshots(state.metric_snapshots())
                if merged:
                    sections.append(snapshot_lines(
                        merged, labels={"campaign": cid}))
            sections.append(snapshot_lines(self.metrics.snapshot(),
                                           prefix="repro_"))
        return render_exposition(sections)

    def _job_payload(self, job) -> dict[str, Any]:
        return {"benchmark": job.benchmark, "seed": job.seed,
                "status": job.status, "attempts": job.attempts,
                "epoch": job.epoch, "step": job.step,
                "quality": job.quality,
                "time_to_train_s": job.time_to_train_s,
                "heartbeat_age_s": job.heartbeat_age_s,
                "stalled": job.stalled, "error": job.error}

    def campaigns_payload(self) -> list[dict[str, Any]]:
        self.refresh()
        out = []
        with self._lock:
            for cid in sorted(self.campaigns):
                state = self.campaigns[cid]
                view = state.view
                if view is None:
                    continue
                settled, total, fraction = view.completion()
                out.append({
                    "id": cid, "cells": total, "settled": settled,
                    "settled_fraction": fraction,
                    "counts": view.counts(), "eta_s": view.eta_s(),
                    "stalled_jobs": len(view.stalled_jobs),
                    "alerts_firing": len(state.engine.active()),
                    "events": len(view.events),
                })
        return out

    def jobs_payload(self, cid: str) -> list[dict[str, Any]] | None:
        self.refresh()
        with self._lock:
            state = self.campaigns.get(cid)
            if state is None or state.view is None:
                return None
            return [self._job_payload(j) for j in state.view.jobs]

    def series_payload(self, cid: str, benchmark: str,
                       seed: str) -> dict[str, Any] | None:
        self.refresh()
        with self._lock:
            state = self.campaigns.get(cid)
            if state is None:
                return None
            header = state.run_header(benchmark, seed)
            if header is None:
                return None
            return {"run": f"{cid}/{benchmark}/{seed}",
                    "quality": header.get("quality"),
                    "epochs": header.get("epochs"),
                    "time_to_train_s": header.get("time_to_train_s"),
                    "series": header.get("series")}

    def alerts_payload(self) -> dict[str, Any]:
        self.refresh()
        with self._lock:
            firing, recent = [], []
            for cid in sorted(self.campaigns):
                state = self.campaigns[cid]
                firing.extend(dict(a.to_payload(), campaign=cid)
                              for a in state.engine.active())
                recent.extend(
                    {"campaign": cid, "event": ev.name, "time_s": ev.time_s,
                     **ev.args} for ev in state.transitions)
            recent.sort(key=lambda t: t["time_s"])
            return {"firing": firing, "recent": recent[-200:]}

    # -- SSE -----------------------------------------------------------------
    def sse_after(self, seq: int, timeout_s: float
                  ) -> list[tuple[int, str, Event]]:
        """Ring entries newer than ``seq``, waiting up to ``timeout_s``."""
        deadline = time.monotonic() + timeout_s
        with self._ring_cond:
            while True:
                fresh = [entry for entry in self._ring if entry[0] > seq]
                if fresh:
                    return fresh
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return []
                self._ring_cond.wait(min(remaining, self.poll_interval_s))

    # -- HTTP ----------------------------------------------------------------
    def bind(self) -> "ObservabilityServer":
        """Bind the listening socket (resolves port 0 to the real port)."""
        server = self

        class Handler(_Handler):
            observability = server

        self._httpd = ThreadingHTTPServer((self.host, self.port), Handler)
        self._httpd.daemon_threads = True
        self.port = self._httpd.server_address[1]
        return self

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def serve_forever(self) -> None:
        if self._httpd is None:
            self.bind()
        try:
            self._httpd.serve_forever(poll_interval=0.2)
        finally:
            self.close()

    def shutdown(self) -> None:
        if self._httpd is not None:
            self._httpd.shutdown()

    def close(self) -> None:
        if self._httpd is not None:
            self._httpd.server_close()
        for state in self.campaigns.values():
            state.close()


class _Handler(BaseHTTPRequestHandler):
    observability: ObservabilityServer  # injected by bind()
    protocol_version = "HTTP/1.1"

    # Keep request handling quiet: the server's stdout belongs to the CLI.
    def log_message(self, fmt, *args):
        return None

    def _send(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, payload: Any, status: int = 200) -> None:
        body = json.dumps(payload, indent=2, sort_keys=True).encode("utf-8")
        self._send(status, body + b"\n", "application/json; charset=utf-8")

    def _not_found(self, what: str) -> None:
        self._send_json({"error": f"{what} not found"}, status=404)

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        srv = self.observability
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        parts = [p for p in path.split("/") if p]
        try:
            if path == "/metrics":
                self._send(200, srv.metrics_text().encode("utf-8"),
                           EXPOSITION_CONTENT_TYPE)
            elif path == "/api/campaigns":
                self._send_json({"campaigns": srv.campaigns_payload()})
            elif parts[:2] == ["api", "campaigns"] and len(parts) in (3, 4):
                cid = parts[2]
                jobs = srv.jobs_payload(cid)
                if jobs is None:
                    return self._not_found(f"campaign {cid!r}")
                if len(parts) == 3:
                    summary = [c for c in srv.campaigns_payload()
                               if c["id"] == cid]
                    self._send_json(dict(summary[0], jobs=jobs)
                                    if summary else {"id": cid, "jobs": jobs})
                elif parts[3] == "jobs":
                    self._send_json({"campaign": cid, "jobs": jobs})
                else:
                    self._not_found(path)
            elif (parts[:2] == ["api", "runs"] and len(parts) == 6
                  and parts[5] == "series"):
                payload = srv.series_payload(parts[2], parts[3], parts[4])
                if payload is None:
                    return self._not_found(f"run {'/'.join(parts[2:5])!r}")
                self._send_json(payload)
            elif path == "/api/alerts":
                self._send_json(srv.alerts_payload())
            elif path == "/events":
                self._serve_sse()
            elif path == "/":
                self._send_json({"endpoints": [
                    "/metrics", "/api/campaigns", "/api/campaigns/<id>",
                    "/api/campaigns/<id>/jobs",
                    "/api/runs/<campaign>/<benchmark>/<seed>/series",
                    "/api/alerts", "/events"]})
            else:
                self._not_found(path)
        except BrokenPipeError:
            pass

    def _serve_sse(self) -> None:
        srv = self.observability
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream; charset=utf-8")
        self.send_header("Cache-Control", "no-cache")
        self.end_headers()
        last_seq = 0
        if "Last-Event-ID" in self.headers:
            try:
                last_seq = int(self.headers["Last-Event-ID"])
            except ValueError:
                pass
        try:
            while True:
                srv.refresh()
                fresh = srv.sse_after(last_seq, srv.poll_interval_s)
                if not fresh:
                    self.wfile.write(b": keep-alive\n\n")
                    self.wfile.flush()
                    continue
                for seq, cid, event in fresh:
                    data = json.dumps(
                        {"campaign": cid, "name": event.name,
                         "time_s": event.time_s, "pid": event.pid,
                         "args": event.args}, sort_keys=True)
                    self.wfile.write(
                        f"id: {seq}\nevent: {event.name}\n"
                        f"data: {data}\n\n".encode("utf-8"))
                    last_seq = seq
                self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError):
            return
