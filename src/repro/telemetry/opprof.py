"""Op-level profiling: where the wall-clock goes *inside* a step.

The paper's §4.1 log and the DAWNBench decomposition answer "which phase
was slow" (init vs. epochs vs. eval); this module answers the next
question down — which *op* — by recording per-op call counts, wall time,
and bytes moved for forward and backward passes, per phase.

Three moving parts:

- :class:`OpProfiler` — the recorder.  One lives on every
  :class:`~repro.telemetry.context.Telemetry` session; kernels reach it
  through :func:`current_profiler` (via the tiny shim in
  :mod:`repro.framework.prof`, which keeps the framework → telemetry
  dependency lazy).  Mode comes from ``REPRO_PROFILE``:

  - ``off`` (default) — ``active`` is permanently False and every probe
    collapses to one attribute check; numerics are untouched, so runs
    are bit-identical to an unprofiled build.
  - ``sampled`` — profile one step out of every ``REPRO_PROFILE_EVERY``
    (default 8).  The runner calls :meth:`OpProfiler.step` at each epoch
    boundary; benches call it per iteration.  Window 0 (model creation,
    first step) is always sampled so short runs still produce data.
  - ``full`` — profile every step.

- **Self vs. total time.**  Profiled ops nest (a fused linear records a
  GEMM inside itself when fusion is off), so the recorder keeps a span
  stack and charges child time against the parent: ``self_ns`` sums to
  the true profiled wall-clock with no double counting, while
  ``total_ns`` stays the inclusive cost callers observe.

- **Memory accounting.**  When profiling is on, the Telemetry session
  installs :meth:`OpProfiler.note_alloc` as the framework's tensor
  allocation tracker, so each phase reports tensor bytes constructed;
  :meth:`snapshot` also captures the workspace arena's live/peak/saved
  bytes, making the arena's reuse savings visible per run.

The serializable aggregate (:func:`OpProfiler.snapshot`) is a plain dict
with ``schema == "repro.op_profile.v1"``; it rides on
:class:`~repro.telemetry.profile.RunTelemetry` and round-trips through
saved run artifacts, which is what ``repro profile <run>`` renders.
"""

from __future__ import annotations

import os
import time
from typing import Any, Callable, Iterable

__all__ = ["OpProfiler", "NULL_OP_SPAN", "OP_PROFILE_SCHEMA", "PROFILE_MODES",
           "DEFAULT_SAMPLE_EVERY", "profile_mode_from_env",
           "merge_op_profiles", "render_op_profile"]

OP_PROFILE_SCHEMA = "repro.op_profile.v1"
PROFILE_MODES = ("off", "sampled", "full")
DEFAULT_SAMPLE_EVERY = 8

_ENV_MODE = "REPRO_PROFILE"
_ENV_EVERY = "REPRO_PROFILE_EVERY"


def profile_mode_from_env() -> str:
    """The validated ``REPRO_PROFILE`` value (default ``off``)."""
    mode = os.environ.get(_ENV_MODE, "off").strip().lower() or "off"
    if mode not in PROFILE_MODES:
        raise ValueError(
            f"{_ENV_MODE}={mode!r}: expected one of {PROFILE_MODES}")
    return mode


def _sample_every_from_env() -> int:
    raw = os.environ.get(_ENV_EVERY, "").strip()
    if not raw:
        return DEFAULT_SAMPLE_EVERY
    every = int(raw)
    if every < 1:
        raise ValueError(f"{_ENV_EVERY} must be >= 1, got {every}")
    return every


class _NullOpSpan:
    """Shared no-op stand-in returned when the profiler is not sampling."""

    __slots__ = ()

    def __enter__(self) -> "_NullOpSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None

    def add_bytes(self, nbytes: int) -> None:
        return None


NULL_OP_SPAN = _NullOpSpan()


class _OpSpan:
    """Times one explicit op section (optimizer update, all-reduce)."""

    __slots__ = ("_prof", "_name", "_phase", "_nbytes", "_t0")

    def __init__(self, prof: "OpProfiler", name: str, phase: str | None,
                 nbytes: int):
        self._prof = prof
        self._name = name
        self._phase = phase
        self._nbytes = nbytes
        self._t0 = 0

    def add_bytes(self, nbytes: int) -> None:
        self._nbytes += int(nbytes)

    def __enter__(self) -> "_OpSpan":
        self._prof.begin()
        self._t0 = self._prof.clock_ns()
        return self

    def __exit__(self, exc_type, *exc) -> None:
        dt = self._prof.clock_ns() - self._t0
        if exc_type is not None:
            self._prof.cancel()
            return
        self._prof.end(self._name, dt, self._nbytes, phase=self._phase)


class OpProfiler:
    """Per-op wall-time/bytes recorder with step sampling.

    ``active`` is the one flag hot paths check: False collapses every
    probe to a no-op.  ``phase`` is the bucket forward-path records land
    in; :meth:`~repro.framework.tensor.Tensor.backward` flips it to
    ``backward`` for the extent of a backward pass, and explicit sites
    pass their own (``update`` for the optimizer, ``comms`` for the
    all-reduce).
    """

    __slots__ = ("mode", "sample_every", "active", "phase", "steps_total",
                 "steps_sampled", "clock_ns", "_ops", "_mem", "_stack")

    def __init__(self, mode: str | None = None, sample_every: int | None = None,
                 enabled: bool = True, clock_ns: Callable[[], int] | None = None):
        if mode is None:
            mode = profile_mode_from_env() if enabled else "off"
        if mode not in PROFILE_MODES:
            raise ValueError(f"profile mode must be one of {PROFILE_MODES}, "
                             f"got {mode!r}")
        if not enabled:
            mode = "off"
        self.mode = mode
        self.sample_every = (sample_every if sample_every is not None
                             else _sample_every_from_env())
        if self.sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.clock_ns = clock_ns or time.perf_counter_ns
        # Window 0 (everything before the first step boundary, plus the
        # first step) is always sampled, so short runs still profile.
        self.active = mode != "off"
        self.phase = "forward"
        self.steps_total = 0
        self.steps_sampled = 1 if self.active else 0
        # (phase, op) -> [calls, total_ns, self_ns, bytes_moved]
        self._ops: dict[tuple[str, str], list[int]] = {}
        # phase -> {"tensor_allocs": n, "tensor_bytes": n}
        self._mem: dict[str, dict[str, int]] = {}
        self._stack: list[int] = []  # child-time accumulators (ns)

    # -- sampling ------------------------------------------------------------
    def step(self) -> None:
        """Mark a step/epoch boundary (drives ``sampled`` mode)."""
        if self.mode == "off":
            return
        self.steps_total += 1
        if self.mode == "sampled":
            self.active = (self.steps_total % self.sample_every) == 0
        if self.active:
            self.steps_sampled += 1

    # -- recording -----------------------------------------------------------
    def begin(self) -> None:
        """Open a nesting level (pair with :meth:`end` or :meth:`cancel`)."""
        self._stack.append(0)

    def cancel(self) -> None:
        """Abandon the innermost open level (op raised; record nothing)."""
        if self._stack:
            self._stack.pop()

    def end(self, name: str, total_ns: int, nbytes: int = 0,
            phase: str | None = None) -> None:
        """Close the innermost level and record the op."""
        child_ns = self._stack.pop() if self._stack else 0
        if self._stack:
            self._stack[-1] += total_ns
        key = ((phase or self.phase), name)
        entry = self._ops.get(key)
        if entry is None:
            self._ops[key] = entry = [0, 0, 0, 0]
        entry[0] += 1
        entry[1] += total_ns
        entry[2] += max(total_ns - child_ns, 0)
        entry[3] += int(nbytes)

    def op(self, name: str, phase: str | None = None, nbytes: int = 0):
        """Context manager timing an explicit section; no-op when inactive."""
        if not self.active:
            return NULL_OP_SPAN
        return _OpSpan(self, name, phase, nbytes)

    # -- memory --------------------------------------------------------------
    def note_alloc(self, nbytes: int) -> None:
        """Tensor-construction hook (installed by ``Telemetry.activate``)."""
        if not self.active:
            return
        bucket = self._mem.get(self.phase)
        if bucket is None:
            self._mem[self.phase] = bucket = {"tensor_allocs": 0,
                                              "tensor_bytes": 0}
        bucket["tensor_allocs"] += 1
        bucket["tensor_bytes"] += int(nbytes)

    # -- export --------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """The serializable ``OpProfile`` payload (empty dict when off)."""
        if self.mode == "off":
            return {}
        ops: dict[str, dict[str, dict[str, int]]] = {}
        for (phase, name), (calls, total_ns, self_ns, nbytes) in sorted(
                self._ops.items()):
            ops.setdefault(phase, {})[name] = {
                "calls": calls,
                "total_ns": total_ns,
                "self_ns": self_ns,
                "bytes_moved": nbytes,
            }
        payload: dict[str, Any] = {
            "schema": OP_PROFILE_SCHEMA,
            "mode": self.mode,
            "sample_every": self.sample_every,
            "steps_total": self.steps_total,
            "steps_sampled": self.steps_sampled,
            "ops": ops,
            "memory": {phase: dict(bucket)
                       for phase, bucket in sorted(self._mem.items())},
        }
        payload["arena"] = _arena_snapshot()
        return payload


def _arena_snapshot() -> dict[str, float]:
    """The calling thread's workspace-arena memory stats (lazy import)."""
    from ..framework.workspace import arena

    ws = arena()
    stats = ws.stats()
    return {
        "live_bytes": stats.get("live_bytes", 0),
        "peak_live_bytes": stats.get("peak_live_bytes", 0),
        "bytes_allocated": stats.get("bytes_allocated", 0),
        "bytes_requested": stats.get("bytes_requested", 0),
        "bytes_saved": stats.get("bytes_saved", 0),
        "hit_rate": stats.get("hit_rate", 0.0),
    }


def merge_op_profiles(payloads: Iterable[dict[str, Any] | None]) -> dict[str, Any]:
    """Sum several ``OpProfile`` payloads (e.g. one per campaign cell).

    Counters and step counts add; ``mode``/``sample_every`` are taken
    from the first payload; arena gauges take element-wise maxima (peaks)
    except counters, which add.
    """
    present = [p for p in payloads if p]
    if not present:
        return {}
    out: dict[str, Any] = {
        "schema": OP_PROFILE_SCHEMA,
        "mode": present[0].get("mode", "sampled"),
        "sample_every": present[0].get("sample_every", DEFAULT_SAMPLE_EVERY),
        "steps_total": 0,
        "steps_sampled": 0,
        "ops": {},
        "memory": {},
        "arena": {},
    }
    for payload in present:
        out["steps_total"] += int(payload.get("steps_total", 0))
        out["steps_sampled"] += int(payload.get("steps_sampled", 0))
        for phase, ops in (payload.get("ops") or {}).items():
            into = out["ops"].setdefault(phase, {})
            for name, stat in ops.items():
                acc = into.setdefault(name, {"calls": 0, "total_ns": 0,
                                             "self_ns": 0, "bytes_moved": 0})
                for field in acc:
                    acc[field] += int(stat.get(field, 0))
        for phase, bucket in (payload.get("memory") or {}).items():
            into = out["memory"].setdefault(phase, {})
            for field, value in bucket.items():
                into[field] = into.get(field, 0) + int(value)
        for field, value in (payload.get("arena") or {}).items():
            if field in ("bytes_allocated", "bytes_requested", "bytes_saved"):
                out["arena"][field] = out["arena"].get(field, 0) + value
            else:
                out["arena"][field] = max(out["arena"].get(field, 0), value)
    return out


def _fmt_bytes(n: float) -> str:
    n = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(n) < 1024.0 or unit == "GiB":
            return f"{n:.1f}{unit}" if unit != "B" else f"{int(n)}B"
        n /= 1024.0
    return f"{n:.1f}GiB"


def render_op_profile(payload: dict[str, Any]) -> str:
    """A per-phase op table: calls, total/self ms, bytes, self-time share."""
    if not payload:
        return "no op profile recorded (REPRO_PROFILE=off)"
    lines = [
        f"op profile: mode={payload.get('mode')} "
        f"sample_every={payload.get('sample_every')} "
        f"steps={payload.get('steps_total')} "
        f"sampled={payload.get('steps_sampled')}"
    ]
    ops = payload.get("ops") or {}
    total_self = sum(stat.get("self_ns", 0)
                     for phase_ops in ops.values()
                     for stat in phase_ops.values()) or 1
    header = (f"  {'Phase':<10}{'Op':<22}{'Calls':>8}{'Total ms':>11}"
              f"{'Self ms':>10}{'Bytes':>11}{'Share':>8}")
    lines += [header, "  " + "-" * (len(header) - 2)]
    for phase in sorted(ops):
        ranked = sorted(ops[phase].items(),
                        key=lambda kv: (-kv[1].get("self_ns", 0), kv[0]))
        for name, stat in ranked:
            lines.append(
                f"  {phase:<10}{name:<22}{stat.get('calls', 0):>8}"
                f"{stat.get('total_ns', 0) / 1e6:>11.2f}"
                f"{stat.get('self_ns', 0) / 1e6:>10.2f}"
                f"{_fmt_bytes(stat.get('bytes_moved', 0)):>11}"
                f"{100.0 * stat.get('self_ns', 0) / total_self:>7.1f}%"
            )
    memory = payload.get("memory") or {}
    if memory:
        lines.append("  memory (tensor construction per phase):")
        for phase in sorted(memory):
            bucket = memory[phase]
            lines.append(
                f"    {phase:<10}{bucket.get('tensor_allocs', 0):>8} allocs"
                f"  {_fmt_bytes(bucket.get('tensor_bytes', 0)):>11}"
            )
    arena = payload.get("arena") or {}
    if arena:
        lines.append(
            "  arena: "
            f"peak_live={_fmt_bytes(arena.get('peak_live_bytes', 0))} "
            f"allocated={_fmt_bytes(arena.get('bytes_allocated', 0))} "
            f"requested={_fmt_bytes(arena.get('bytes_requested', 0))} "
            f"saved={_fmt_bytes(arena.get('bytes_saved', 0))} "
            f"hit_rate={arena.get('hit_rate', 0.0):.3f}"
        )
    return "\n".join(lines)
