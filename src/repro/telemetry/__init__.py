"""Session-wide observability: trace spans, metrics, and profiling hooks.

The paper's §4.1 makes structured training-session logs "the foundation
for subsequent result analysis"; DAWNBench (Coleman et al., 2018) showed
that time-to-accuracy is only interpretable when wall-clock can be
decomposed into data pipeline vs. compute vs. eval.  This package is the
measurement substrate for that decomposition:

- :mod:`repro.telemetry.trace` — nested :class:`Span`/:class:`Tracer`
  with a context-manager API and Chrome ``trace_event`` JSON export;
- :mod:`repro.telemetry.metrics` — counters, gauges, and fixed-bucket
  histograms in a :class:`MetricsRegistry` with a text summary renderer;
- :mod:`repro.telemetry.profile` — the :class:`Instrumented` module
  wrapper and phase decomposition of structured logs.

Telemetry is **zero-overhead by default**: the ambient tracer and
registry are disabled no-ops until a :class:`Telemetry` session is
activated (``with telemetry.activate(): ...``).  Instrumentation sites
deep in the suite and framework reach the ambient instances through
:func:`current_tracer` / :func:`current_metrics`, so no constructor
threading is required.  Both drive off the same injectable clock as
:class:`repro.core.timing.Clock`, so traces are deterministic under
``FakeClock``.
"""

from .trace import (
    NULL_SPAN,
    Span,
    Tracer,
    chrome_trace_from_intervals,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_METRICS,
    merge_snapshots,
)
from .context import (
    Telemetry,
    activate,
    current_metrics,
    current_telemetry,
    current_tracer,
)
from .profile import (
    Instrumented,
    PhaseDecomposition,
    RunTelemetry,
    decompose_log_events,
    merged_run_telemetry,
    trace_from_log_events,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Instrumented",
    "MetricsRegistry",
    "NULL_METRICS",
    "NULL_SPAN",
    "PhaseDecomposition",
    "RunTelemetry",
    "Span",
    "Telemetry",
    "Tracer",
    "activate",
    "chrome_trace_from_intervals",
    "current_metrics",
    "current_telemetry",
    "current_tracer",
    "decompose_log_events",
    "merge_snapshots",
    "merged_run_telemetry",
    "trace_from_log_events",
]
