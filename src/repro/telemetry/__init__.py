"""Session-wide observability: trace spans, metrics, and profiling hooks.

The paper's §4.1 makes structured training-session logs "the foundation
for subsequent result analysis"; DAWNBench (Coleman et al., 2018) showed
that time-to-accuracy is only interpretable when wall-clock can be
decomposed into data pipeline vs. compute vs. eval.  This package is the
measurement substrate for that decomposition:

- :mod:`repro.telemetry.trace` — nested :class:`Span`/:class:`Tracer`
  with a context-manager API and Chrome ``trace_event`` JSON export;
- :mod:`repro.telemetry.metrics` — counters, gauges, and fixed-bucket
  histograms in a :class:`MetricsRegistry` with a text summary renderer;
- :mod:`repro.telemetry.profile` — the :class:`Instrumented` module
  wrapper and phase decomposition of structured logs;
- :mod:`repro.telemetry.events` — the live side: an event bus with
  append-only JSONL :class:`EventLog` sinks and per-job heartbeat files,
  crash-tolerant on read;
- :mod:`repro.telemetry.timeseries` — per-run sampled series
  (throughput, eval quality, arena hit rate, all-reduce bytes) recorded
  at epoch/eval boundaries and persisted in run artifacts;
- :mod:`repro.telemetry.monitor` — the ``repro monitor`` view, built
  purely from a campaign directory's journal + heartbeat + event files;
- :mod:`repro.telemetry.regress` — schema-aware ``BENCH_*.json``
  comparison with per-metric tolerance bands (``repro bench-diff``),
  with per-op regression attribution when a timing gate trips;
- :mod:`repro.telemetry.opprof` — the sampled op-level profiler
  (``REPRO_PROFILE=off|sampled|full``) recording per-op call counts,
  wall time, and bytes moved for forward/backward/update/comms;
- :mod:`repro.telemetry.analyze` — the trace-analysis engine
  (``repro analyze``): cross-process merge, critical path, comms/compute
  overlap, top-k spans and gaps, folded-stacks export.

Telemetry is **zero-overhead by default**: the ambient tracer and
registry are disabled no-ops until a :class:`Telemetry` session is
activated (``with telemetry.activate(): ...``).  Instrumentation sites
deep in the suite and framework reach the ambient instances through
:func:`current_tracer` / :func:`current_metrics`, so no constructor
threading is required.  Both drive off the same injectable clock as
:class:`repro.core.timing.Clock`, so traces are deterministic under
``FakeClock``.
"""

from .trace import (
    NULL_SPAN,
    Span,
    Tracer,
    chrome_trace_from_intervals,
    dedupe_metadata_events,
    metadata_events,
)
from .events import (
    Event,
    EventBus,
    EventCursor,
    EventLog,
    Heartbeat,
    HeartbeatCache,
    HeartbeatWriter,
    NULL_EVENTS,
    merge_event_streams,
    read_events,
    read_heartbeat,
)
from .alerts import (
    ActiveAlert,
    AlertEngine,
    AlertRule,
    StreamFold,
    default_rules,
    load_rules_file,
    parse_rules,
    replay_alerts,
)
from .timeseries import (
    RunSeries,
    SeriesPoint,
    render_series_table,
)
from .monitor import (
    CampaignTailer,
    JobView,
    MonitorView,
    build_view,
    campaign_dir_problem,
    load_monitor_view,
    render_job_table,
    render_monitor_view,
)
from .export import (
    render_exposition,
    sanitize_metric_name,
    snapshot_lines,
)
from .regress import (
    AttributionRow,
    MetricSpec,
    RegressionReport,
    attribute_regression,
    compare_reports,
    load_report,
)
from .opprof import (
    OpProfiler,
    merge_op_profiles,
    profile_mode_from_env,
    render_op_profile,
)
from .analyze import (
    TraceAnalysis,
    analyze_campaign_dir,
    analyze_trace,
    spans_from_events,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_METRICS,
    merge_snapshots,
)
from .context import (
    Telemetry,
    activate,
    current_events,
    current_metrics,
    current_profiler,
    current_telemetry,
    current_tracer,
)
from .profile import (
    Instrumented,
    PhaseDecomposition,
    RunTelemetry,
    decompose_log_events,
    merged_run_telemetry,
    trace_from_log_events,
)

__all__ = [
    "ActiveAlert",
    "AlertEngine",
    "AlertRule",
    "AttributionRow",
    "CampaignTailer",
    "Counter",
    "Event",
    "EventBus",
    "EventCursor",
    "EventLog",
    "Gauge",
    "Heartbeat",
    "HeartbeatCache",
    "HeartbeatWriter",
    "Histogram",
    "Instrumented",
    "JobView",
    "MetricSpec",
    "MetricsRegistry",
    "MonitorView",
    "NULL_EVENTS",
    "NULL_METRICS",
    "NULL_SPAN",
    "OpProfiler",
    "PhaseDecomposition",
    "RegressionReport",
    "RunSeries",
    "RunTelemetry",
    "SeriesPoint",
    "Span",
    "StreamFold",
    "Telemetry",
    "TraceAnalysis",
    "Tracer",
    "activate",
    "analyze_campaign_dir",
    "analyze_trace",
    "attribute_regression",
    "build_view",
    "campaign_dir_problem",
    "chrome_trace_from_intervals",
    "compare_reports",
    "current_events",
    "current_metrics",
    "current_profiler",
    "current_telemetry",
    "current_tracer",
    "decompose_log_events",
    "dedupe_metadata_events",
    "default_rules",
    "load_monitor_view",
    "load_report",
    "load_rules_file",
    "merge_event_streams",
    "merge_op_profiles",
    "merge_snapshots",
    "merged_run_telemetry",
    "metadata_events",
    "parse_rules",
    "profile_mode_from_env",
    "render_exposition",
    "render_op_profile",
    "read_events",
    "read_heartbeat",
    "render_job_table",
    "render_monitor_view",
    "render_series_table",
    "replay_alerts",
    "sanitize_metric_name",
    "snapshot_lines",
    "spans_from_events",
    "trace_from_log_events",
]
