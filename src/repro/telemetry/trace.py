"""Trace spans with Chrome ``trace_event`` export.

A :class:`Span` is one named, timed interval; a :class:`Tracer` records a
tree of them through a context-manager API::

    with tracer.span("epoch", epoch_num=3):
        with tracer.span("forward"):
            ...

Spans nest by containment, exactly how ``chrome://tracing`` / Perfetto
render complete ("ph": "X") events that share a thread id.  The tracer
takes any ``clock()`` callable returning seconds — pass a
:class:`repro.core.timing.FakeClock` for deterministic traces in tests,
or nothing for wall time.

A disabled tracer (``Tracer(enabled=False)``) records nothing and its
``span()`` returns one shared no-op context manager, so instrumentation
left in hot paths costs a single attribute check when telemetry is off.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any, Iterable

__all__ = ["Span", "Tracer", "NULL_SPAN", "chrome_trace_from_intervals",
           "metadata_events", "dedupe_metadata_events"]


def metadata_events(pid: int, process_name: str | None = None,
                    thread_name: str | None = None,
                    tid: int = 0) -> list[dict[str, Any]]:
    """Chrome ``"M"`` metadata events naming a trace's process/thread rows.

    Without these, every session exported as a bare pid/tid integer and
    merged campaign traces were unreadable; with them the viewer shows
    ``benchmark/seed`` labels per row.
    """
    events: list[dict[str, Any]] = []
    if process_name:
        events.append({"name": "process_name", "ph": "M", "cat": "__metadata",
                       "ts": 0, "pid": pid, "tid": tid,
                       "args": {"name": process_name}})
    if thread_name:
        events.append({"name": "thread_name", "ph": "M", "cat": "__metadata",
                       "ts": 0, "pid": pid, "tid": tid,
                       "args": {"name": thread_name}})
    return events


def dedupe_metadata_events(events: Iterable[dict[str, Any]]) -> list[dict[str, Any]]:
    """Collapse colliding ``"M"`` metadata in a merged event list.

    Campaign cells reuse pids across retry attempts, so a merged trace can
    carry several ``process_name`` events for one pid.  Chrome keeps only
    whichever it parses last — which label survives then depends on merge
    order.  Here exact duplicates collapse to one, and *conflicting*
    labels for the same (pid, tid, row) merge into a single event whose
    name joins the distinct labels in first-seen order, so no attempt's
    identity is silently dropped.  Non-metadata events pass through
    untouched, in order, after the metadata block.
    """
    meta: dict[tuple[Any, Any, Any], dict[str, Any]] = {}
    labels: dict[tuple[Any, Any, Any], list[str]] = {}
    rest: list[dict[str, Any]] = []
    for event in events:
        if event.get("ph") != "M":
            rest.append(event)
            continue
        key = (event.get("pid"), event.get("tid"), event.get("name"))
        label = str(event.get("args", {}).get("name", ""))
        if key not in meta:
            meta[key] = dict(event)
            labels[key] = [label]
        elif label not in labels[key]:
            labels[key].append(label)
    out = []
    for key, event in meta.items():
        if len(labels[key]) > 1:
            event = dict(event)
            event["args"] = {**event.get("args", {}),
                             "name": " | ".join(labels[key])}
        out.append(event)
    return out + rest


@dataclass
class Span:
    """One named, timed interval; ``end_s`` is None while the span is open."""

    name: str
    start_s: float
    end_s: float | None = None
    depth: int = 0
    args: dict[str, Any] = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        if self.end_s is None:
            raise RuntimeError(f"span {self.name!r} is still open")
        return self.end_s - self.start_s

    def set(self, **args: Any) -> "Span":
        """Attach extra args to the span (shows under Args in the viewer)."""
        self.args.update(args)
        return self


class _NullSpan:
    """Shared no-op stand-in returned by a disabled tracer."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None

    def set(self, **args: Any) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


class _OpenSpan:
    """Context manager closing one live span on exit."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, *exc) -> None:
        if exc_type is not None:
            self._span.args.setdefault("error", exc_type.__name__)
        self._tracer._close(self._span)


class Tracer:
    """Records a tree of spans against an injectable clock.

    Parameters
    ----------
    clock:
        ``clock()`` -> seconds.  ``Clock`` instances from
        :mod:`repro.core.timing` are callable and fit directly; default is
        ``time.perf_counter``.
    enabled:
        When False the tracer is a no-op (the zero-overhead default used
        by the ambient telemetry context).
    pid / tid:
        Process and thread ids stamped on exported events — campaign
        workers use their job ordinal so merged traces keep one process
        row per cell instead of collapsing onto pid=0/tid=0.
    process_name / thread_name:
        When set, :meth:`chrome_events` prepends the matching ``"M"``
        (metadata) events so the viewer labels the rows by job instead of
        by bare integer ids.
    """

    def __init__(self, clock=None, enabled: bool = True, pid: int = 0,
                 tid: int = 0, process_name: str | None = None,
                 thread_name: str | None = None):
        self.clock = clock or time.perf_counter
        self.enabled = enabled
        self.pid = pid
        self.tid = tid
        self.process_name = process_name
        self.thread_name = thread_name
        self.spans: list[Span] = []
        self._stack: list[Span] = []

    # -- recording -----------------------------------------------------------
    def span(self, name: str, **args: Any):
        """Open a span as a context manager; closes (and records) on exit."""
        if not self.enabled:
            return NULL_SPAN
        record = Span(name=name, start_s=float(self.clock()),
                      depth=len(self._stack), args=dict(args))
        self._stack.append(record)
        self.spans.append(record)
        return _OpenSpan(self, record)

    def _close(self, span: Span) -> None:
        if not self._stack or self._stack[-1] is not span:
            raise RuntimeError(f"span {span.name!r} closed out of order")
        self._stack.pop()
        span.end_s = float(self.clock())

    def instant(self, name: str, **args: Any) -> None:
        """Record a zero-duration marker event."""
        if not self.enabled:
            return
        now = float(self.clock())
        self.spans.append(Span(name=name, start_s=now, end_s=now,
                               depth=len(self._stack), args=dict(args)))

    @property
    def open_spans(self) -> list[Span]:
        return list(self._stack)

    def abort_open(self, error: str | None = None) -> int:
        """Close every open span (innermost first) at the current clock.

        A run that dies mid-epoch leaves its ``run``/``epoch`` spans open,
        and :meth:`chrome_events` drops open spans — so without this a
        failed run exported an *empty* trace, exactly when a trace is most
        wanted.  The runner's failure path calls this before snapshotting;
        each closed span is stamped ``aborted=True`` (plus ``error`` when
        given) so viewers can tell truncation from completion.  Returns
        the number of spans closed.
        """
        closed = 0
        now = float(self.clock()) if self._stack else 0.0
        while self._stack:
            span = self._stack.pop()
            span.end_s = now
            span.args.setdefault("aborted", True)
            if error is not None:
                span.args.setdefault("error", error)
            closed += 1
        return closed

    def reset(self) -> None:
        self.spans.clear()
        self._stack.clear()

    # -- export --------------------------------------------------------------
    def chrome_events(self, pid: int | None = None) -> list[dict[str, Any]]:
        """The recorded spans as Chrome ``trace_event`` dicts (closed only).

        When the tracer has a ``process_name``/``thread_name``, matching
        metadata events lead the list so viewers label this session's
        rows; they are emitted only alongside real spans (an idle session
        exports nothing).
        """
        pid = self.pid if pid is None else pid
        events = []
        for s in self.spans:
            if s.end_s is None:
                continue
            events.append({
                "name": s.name,
                "cat": "repro",
                "ph": "X",
                "ts": s.start_s * 1e6,  # trace_event timestamps are in µs
                "dur": (s.end_s - s.start_s) * 1e6,
                "pid": pid,
                "tid": self.tid,
                "args": dict(s.args),
            })
        if events:
            events = metadata_events(pid, self.process_name, self.thread_name,
                                     tid=self.tid) + events
        return events

    def to_chrome_trace(self) -> dict[str, Any]:
        """A complete Chrome-loadable trace document."""
        return {"traceEvents": self.chrome_events(), "displayTimeUnit": "ms"}

    def to_json(self) -> str:
        return json.dumps(self.to_chrome_trace(), sort_keys=True)


def chrome_trace_from_intervals(
    intervals: Iterable[tuple[str, float, float, dict[str, Any]]],
    pid: int = 0,
    process_name: str | None = None,
    thread_name: str | None = None,
) -> dict[str, Any]:
    """Build a Chrome trace document from ``(name, start_s, end_s, args)``.

    Used to reconstruct a viewable trace from sources that are not live
    tracers — chiefly the paired ``*_start``/``*_stop`` events of a saved
    §4.1 training-session log.  ``process_name``/``thread_name`` prepend
    the matching metadata events so reconstructed rows are labelled like
    live-tracer ones.
    """
    events: list[dict[str, Any]] = metadata_events(
        pid, process_name, thread_name)
    events += [
        {
            "name": name,
            "cat": "repro",
            "ph": "X",
            "ts": start_s * 1e6,
            "dur": max(end_s - start_s, 0.0) * 1e6,
            "pid": pid,
            "tid": 0,
            "args": dict(args),
        }
        for name, start_s, end_s, args in intervals
    ]
    return {"traceEvents": events, "displayTimeUnit": "ms"}
