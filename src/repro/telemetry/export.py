"""Prometheus text exposition over the telemetry file surfaces.

The observability server's ``/metrics`` endpoint speaks the Prometheus
text format (version 0.0.4) so any off-the-shelf scraper can watch a
campaign.  Everything here is a pure function from already-loaded state
— :meth:`~repro.telemetry.metrics.MetricsRegistry.snapshot` dicts,
:class:`~repro.telemetry.monitor.MonitorView` job tables, alert states —
to exposition lines; no I/O, no sockets, fully deterministic, so the
format is unit-testable without a server.

Mapping rules:

- counters/gauges export verbatim under a sanitized ``repro_`` name;
- histograms export the native histogram family (``_bucket`` with
  cumulative counts and ``le`` labels, ``_sum``, ``_count``) plus
  interpolated ``{quantile="0.5|0.9|0.99"}`` gauge lines computed by
  :meth:`~repro.telemetry.metrics.Histogram.quantile` — the p50/p90/p99
  a latency dashboard wants without running a query engine;
- job states become ``repro_campaign_jobs{campaign=...,status=...}``
  gauges plus per-campaign progress/stall summaries;
- alerts become a 0/1 ``repro_alert_firing`` gauge per (rule, subject).
"""

from __future__ import annotations

import math
import re
from typing import Any, Iterable, Mapping

__all__ = ["EXPOSITION_CONTENT_TYPE", "sanitize_metric_name", "format_labels",
           "snapshot_lines", "view_lines", "alert_lines", "render_exposition"]

EXPOSITION_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

EXPORTED_QUANTILES = (0.5, 0.9, 0.99)

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_NAME_BAD_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def sanitize_metric_name(name: str, prefix: str = "repro_") -> str:
    """Coerce an internal metric name into the Prometheus charset."""
    name = _NAME_BAD_CHARS.sub("_", f"{prefix}{name}")
    if not _NAME_OK.match(name):
        name = "_" + name
    return name


def _escape_label(value: Any) -> str:
    return str(value).replace("\\", r"\\").replace('"', r'\"').replace("\n", r"\n")


def format_labels(labels: Mapping[str, Any] | None) -> str:
    """Render a label set: ``{}`` -> ``""``, else ``{k="v",...}`` sorted."""
    if not labels:
        return ""
    inner = ",".join(f'{key}="{_escape_label(labels[key])}"'
                     for key in sorted(labels))
    return "{" + inner + "}"


def _fmt(value: float) -> str:
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _interpolated_quantile(inst: dict[str, Any], q: float) -> float | None:
    """:meth:`Histogram.quantile` over a serialized snapshot entry."""
    from .metrics import Histogram

    hist = Histogram("_q", tuple(inst["buckets"]))
    hist.counts = list(inst["counts"])
    hist.count = int(inst["count"])
    hist.sum = float(inst["sum"])
    if inst.get("min") is not None:
        hist.min = float(inst["min"])
    if inst.get("max") is not None:
        hist.max = float(inst["max"])
    return hist.quantile(q)


def snapshot_lines(snapshot: Mapping[str, Mapping[str, Any]],
                   labels: Mapping[str, Any] | None = None,
                   prefix: str = "repro_") -> list[str]:
    """Exposition lines for one :meth:`MetricsRegistry.snapshot` dict."""
    lines: list[str] = []
    for raw_name in sorted(snapshot):
        inst = snapshot[raw_name]
        kind = inst.get("type")
        name = sanitize_metric_name(raw_name, prefix)
        label_txt = format_labels(labels)
        if kind == "counter":
            lines.append(f"# TYPE {name} counter")
            lines.append(f"{name}{label_txt} {_fmt(inst['value'])}")
        elif kind == "gauge":
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name}{label_txt} {_fmt(inst['value'])}")
        elif kind == "histogram":
            lines.append(f"# TYPE {name} histogram")
            cumulative = 0
            for bound, count in zip(inst["buckets"], inst["counts"]):
                cumulative += count
                bucket_labels = dict(labels or {})
                bucket_labels["le"] = _fmt(bound)
                lines.append(f"{name}_bucket{format_labels(bucket_labels)} "
                             f"{cumulative}")
            inf_labels = dict(labels or {})
            inf_labels["le"] = "+Inf"
            lines.append(f"{name}_bucket{format_labels(inf_labels)} "
                         f"{inst['count']}")
            lines.append(f"{name}_sum{label_txt} {_fmt(inst['sum'])}")
            lines.append(f"{name}_count{label_txt} {inst['count']}")
            for q in EXPORTED_QUANTILES:
                value = _interpolated_quantile(inst, q)
                if value is None:
                    continue
                q_labels = dict(labels or {})
                q_labels["quantile"] = _fmt(q)
                lines.append(f"{name}_q{format_labels(q_labels)} {_fmt(value)}")
        # "null" entries (disabled registries) export nothing.
    return lines


# Every state a JobView can carry; exporting the full vector (zeros
# included) keeps scrape series dense so rate()/deltas behave.
_JOB_STATES = ("pending", "running", "stalled", "reached", "quality_miss",
               "fault", "timeout")


def view_lines(view, campaign: str) -> list[str]:
    """Job-state and progress gauges for one campaign's MonitorView."""
    lines = ["# TYPE repro_campaign_jobs gauge"]
    counts = view.counts()
    for status in _JOB_STATES:
        labels = format_labels({"campaign": campaign, "status": status})
        lines.append(f"repro_campaign_jobs{labels} {counts.get(status, 0)}")
    settled, total, fraction = view.completion()
    labels = format_labels({"campaign": campaign})
    lines.append("# TYPE repro_campaign_cells gauge")
    lines.append(f"repro_campaign_cells{labels} {total}")
    lines.append("# TYPE repro_campaign_settled_fraction gauge")
    lines.append(f"repro_campaign_settled_fraction{labels} "
                 f"{_fmt(fraction if fraction is not None else 0.0)}")
    eta = view.eta_s()
    if eta is not None:
        lines.append("# TYPE repro_campaign_eta_seconds gauge")
        lines.append(f"repro_campaign_eta_seconds{labels} {_fmt(eta)}")
    lines.append("# TYPE repro_campaign_stalled_jobs gauge")
    lines.append(f"repro_campaign_stalled_jobs{labels} {len(view.stalled_jobs)}")
    return lines


def alert_lines(active: Iterable[Any], campaign: str) -> list[str]:
    """One 0/1 gauge sample per currently-firing alert."""
    lines = ["# TYPE repro_alert_firing gauge"]
    count = 0
    for alert in active:
        labels = format_labels({"campaign": campaign, "rule": alert.rule,
                                "key": alert.key,
                                "severity": alert.severity})
        lines.append(f"repro_alert_firing{labels} 1")
        count += 1
    labels = format_labels({"campaign": campaign})
    lines.append("# TYPE repro_alerts_firing_total gauge")
    lines.append(f"repro_alerts_firing_total{labels} {count}")
    return lines


def render_exposition(sections: Iterable[list[str]]) -> str:
    """Join line groups into one exposition body (trailing newline, as
    the format requires)."""
    lines: list[str] = []
    for section in sections:
        lines.extend(section)
    return "\n".join(lines) + "\n"
