"""Trace analysis: critical path, overlap, gaps, and flamegraph export.

PR 5 made runs *emit* Chrome traces and per-worker event streams; this
module makes them *answer questions*.  Everything operates on plain
``trace_event`` dicts (or :class:`~repro.telemetry.events.Event` streams
reconstructed into spans), so it works identically on a live tracer's
export, a saved ``--trace`` file, and a campaign directory:

- **Clock-aligned merge.**  Workers stamp events with their own clock
  origin; when per-pid time ranges are disjoint (the tell-tale of
  different origins), each pid is shifted so its earliest span starts at
  zero, making cross-process comparison meaningful.  The heuristic is
  overridable (``align=True/False``).
- **Critical path.**  For the straggler process (the pid/tid whose last
  span ends latest — the one that *set* time-to-train), the span forest
  is decomposed into the deepest-active segment at every instant, so
  "where did the wall-clock go" has a single deterministic answer.
- **Comms/compute overlap.**  The fraction of all-reduce time hidden
  under compute, measured from the ``all_reduce`` / ``worker_grad``
  spans the PR 4 :class:`~repro.comms.engine.ShardedDataParallel` engine
  emits — the paper's scale-efficiency question, per trace.
- **Top-k span and gap tables** and a **folded-stacks export**
  (``pid0;run;epoch 12345`` lines) that feeds any flamegraph renderer.

Determinism: every ordering is an explicit sort on values present in
the input, so the same trace always produces the same analysis —
``repro analyze`` output is diffable and testable under FakeClock.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Sequence

__all__ = ["TraceSpan", "TraceAnalysis", "TRACE_ANALYSIS_SCHEMA",
           "COMMS_SPAN_NAMES", "COMPUTE_SPAN_NAMES",
           "spans_from_events", "align_span_origins", "critical_path",
           "overlap_stats", "top_spans", "top_gaps", "folded_stacks",
           "analyze_trace", "spans_from_campaign_events",
           "analyze_campaign_dir", "load_trace_document"]

TRACE_ANALYSIS_SCHEMA = "repro.trace_analysis.v1"

# Span names that are communication vs. computation for overlap purposes.
# Compute is deliberately restricted to *leaf* compute spans (the comms
# engine's per-worker gradient work, module-level forward/backward): an
# enclosing phase span like ``epoch`` contains the all-reduce itself, so
# counting it would make every reduction look perfectly hidden.
COMMS_SPAN_NAMES = frozenset({"all_reduce"})
COMPUTE_SPAN_NAMES = frozenset({"worker_grad", "forward", "backward"})

_GAP = "(gap)"


@dataclass(frozen=True)
class TraceSpan:
    """One closed interval from a trace, in microseconds."""

    name: str
    pid: int
    tid: int
    start_us: float
    end_us: float
    args: dict[str, Any] = field(default_factory=dict)

    @property
    def dur_us(self) -> float:
        return self.end_us - self.start_us


def load_trace_document(path: str | Path) -> dict[str, Any]:
    """Read a Chrome trace JSON document (dict or bare event list)."""
    doc = json.loads(Path(path).read_text(encoding="utf-8"))
    if isinstance(doc, list):
        doc = {"traceEvents": doc}
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise ValueError(f"{path}: not a Chrome trace document")
    return doc


def spans_from_events(events: Iterable[dict[str, Any]]) -> list[TraceSpan]:
    """Closed ``"X"`` events as :class:`TraceSpan`; metadata/instants skip."""
    spans = []
    for event in events:
        if event.get("ph") != "X":
            continue
        ts = float(event.get("ts", 0.0))
        dur = float(event.get("dur", 0.0))
        spans.append(TraceSpan(
            name=str(event.get("name", "?")),
            pid=int(event.get("pid", 0)),
            tid=int(event.get("tid", 0)),
            start_us=ts,
            end_us=ts + max(dur, 0.0),
            args=dict(event.get("args") or {}),
        ))
    return spans


def _pid_extents(spans: Sequence[TraceSpan]) -> dict[int, tuple[float, float]]:
    extents: dict[int, tuple[float, float]] = {}
    for span in spans:
        lo, hi = extents.get(span.pid, (span.start_us, span.end_us))
        extents[span.pid] = (min(lo, span.start_us), max(hi, span.end_us))
    return extents


def _origins_look_disjoint(spans: Sequence[TraceSpan]) -> bool:
    """True when per-pid time ranges never overlap (different clock bases)."""
    extents = sorted(_pid_extents(spans).values())
    if len(extents) < 2:
        return False
    for (_, prev_hi), (lo, _) in zip(extents, extents[1:]):
        if lo < prev_hi:
            return False
    return True


def align_span_origins(spans: Sequence[TraceSpan]) -> list[TraceSpan]:
    """Shift each pid so its earliest span starts at t=0."""
    extents = _pid_extents(spans)
    return [
        TraceSpan(name=s.name, pid=s.pid, tid=s.tid,
                  start_us=s.start_us - extents[s.pid][0],
                  end_us=s.end_us - extents[s.pid][0], args=s.args)
        for s in spans
    ]


# ---------------------------------------------------------------------------
# Containment forest
# ---------------------------------------------------------------------------

class _Node:
    __slots__ = ("span", "children")

    def __init__(self, span: TraceSpan):
        self.span = span
        self.children: list["_Node"] = []


def _build_forest(spans: Sequence[TraceSpan]) -> list[_Node]:
    """Nest one (pid, tid) group's spans by timestamp containment."""
    ordered = sorted(spans, key=lambda s: (s.start_us, -s.end_us, s.name))
    roots: list[_Node] = []
    stack: list[_Node] = []
    for span in ordered:
        node = _Node(span)
        while stack and (span.start_us >= stack[-1].span.end_us
                         or span.end_us > stack[-1].span.end_us):
            stack.pop()
        (stack[-1].children if stack else roots).append(node)
        stack.append(node)
    return roots


def _group_spans(spans: Sequence[TraceSpan]) -> dict[tuple[int, int], list[TraceSpan]]:
    groups: dict[tuple[int, int], list[TraceSpan]] = {}
    for span in spans:
        groups.setdefault((span.pid, span.tid), []).append(span)
    return groups


# ---------------------------------------------------------------------------
# Critical path
# ---------------------------------------------------------------------------

def critical_path(spans: Sequence[TraceSpan]) -> list[dict[str, Any]]:
    """The deepest-active decomposition of the straggler process.

    The straggler is the (pid, tid) group whose last span ends latest —
    the process that determined the trace's wall-clock.  Its forest is
    flattened into consecutive segments, each charged to the deepest
    span covering that instant; idle time between siblings or roots
    becomes ``(gap)`` segments.  Deterministic: ties break on
    (pid, tid), and the forest build sorts on span values only.
    """
    if not spans:
        return []
    groups = _group_spans(spans)
    straggler = max(groups,
                    key=lambda key: (max(s.end_us for s in groups[key]),
                                     -key[0], -key[1]))
    group = groups[straggler]
    roots = _build_forest(group)
    pid, tid = straggler
    segments: list[dict[str, Any]] = []

    def emit(name: str, depth: int, start: float, end: float,
             stack: tuple[str, ...]) -> None:
        if end - start <= 0.0:
            return
        segments.append({"name": name, "pid": pid, "tid": tid,
                         "depth": depth, "start_us": start,
                         "dur_us": end - start, "stack": ";".join(stack)})

    def walk(node: _Node, stack: tuple[str, ...]) -> None:
        span = node.span
        path = stack + (span.name,)
        cursor = span.start_us
        for child in node.children:
            emit(span.name, len(path) - 1, cursor, child.span.start_us, path)
            walk(child, path)
            cursor = max(cursor, child.span.end_us)
        emit(span.name, len(path) - 1, cursor, span.end_us, path)

    cursor = None
    for root in roots:
        if cursor is not None and root.span.start_us > cursor:
            emit(_GAP, 0, cursor, root.span.start_us, (_GAP,))
        walk(root, ())
        cursor = (root.span.end_us if cursor is None
                  else max(cursor, root.span.end_us))
    return segments


def critical_path_shares(segments: Sequence[dict[str, Any]]) -> dict[str, float]:
    """Fraction of the critical path charged to each span name."""
    total = sum(seg["dur_us"] for seg in segments)
    if total <= 0.0:
        return {}
    shares: dict[str, float] = {}
    for seg in segments:
        shares[seg["name"]] = shares.get(seg["name"], 0.0) + seg["dur_us"]
    return {name: dur / total for name, dur in sorted(shares.items())}


# ---------------------------------------------------------------------------
# Overlap, aggregates, gaps, folded stacks
# ---------------------------------------------------------------------------

def _interval_union(intervals: Iterable[tuple[float, float]]) -> list[tuple[float, float]]:
    merged: list[tuple[float, float]] = []
    for lo, hi in sorted(intervals):
        if hi <= lo:
            continue
        if merged and lo <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], hi))
        else:
            merged.append((lo, hi))
    return merged


def _union_length(union: Sequence[tuple[float, float]]) -> float:
    return sum(hi - lo for lo, hi in union)


def _union_intersection(a: Sequence[tuple[float, float]],
                        b: Sequence[tuple[float, float]]) -> float:
    total = 0.0
    i = j = 0
    while i < len(a) and j < len(b):
        lo = max(a[i][0], b[j][0])
        hi = min(a[i][1], b[j][1])
        if hi > lo:
            total += hi - lo
        if a[i][1] <= b[j][1]:
            i += 1
        else:
            j += 1
    return total


def overlap_stats(spans: Sequence[TraceSpan]) -> dict[str, Any]:
    """How much all-reduce time was hidden under concurrent compute.

    The intersection of the comms-span union with the leaf-compute-span
    union, over the comms union — span rows don't matter, only time.
    ``fraction`` is None when the trace has no comms spans at all.
    """
    comms = _interval_union((s.start_us, s.end_us) for s in spans
                            if s.name in COMMS_SPAN_NAMES)
    compute = _interval_union((s.start_us, s.end_us) for s in spans
                              if s.name in COMPUTE_SPAN_NAMES)
    comms_us = _union_length(comms)
    overlap_us = _union_intersection(comms, compute)
    return {
        "comms_us": comms_us,
        "compute_us": _union_length(compute),
        "overlap_us": overlap_us,
        "fraction": (overlap_us / comms_us) if comms_us > 0 else None,
    }


def top_spans(spans: Sequence[TraceSpan], k: int = 10) -> list[dict[str, Any]]:
    """Per-name aggregate table, ranked by total time."""
    agg: dict[str, list[float]] = {}
    for span in spans:
        entry = agg.setdefault(span.name, [0, 0.0, 0.0])
        entry[0] += 1
        entry[1] += span.dur_us
        entry[2] = max(entry[2], span.dur_us)
    wall = (max(s.end_us for s in spans) - min(s.start_us for s in spans)
            if spans else 0.0)
    rows = [
        {"name": name, "calls": int(count), "total_us": total,
         "mean_us": total / count if count else 0.0, "max_us": peak,
         "share_of_wall": (total / wall) if wall > 0 else 0.0}
        for name, (count, total, peak) in agg.items()
    ]
    rows.sort(key=lambda r: (-r["total_us"], r["name"]))
    return rows[:k]


def top_gaps(spans: Sequence[TraceSpan], k: int = 10) -> list[dict[str, Any]]:
    """The largest idle windows between consecutive siblings, per parent."""
    gaps: list[dict[str, Any]] = []
    for (pid, tid), group in sorted(_group_spans(spans).items()):
        def scan(node: _Node) -> None:
            cursor = None
            for child in node.children:
                if cursor is not None and child.span.start_us > cursor:
                    gaps.append({
                        "parent": node.span.name, "pid": pid, "tid": tid,
                        "start_us": cursor,
                        "dur_us": child.span.start_us - cursor,
                    })
                cursor = (child.span.end_us if cursor is None
                          else max(cursor, child.span.end_us))
                scan(child)
        for root in _build_forest(group):
            scan(root)
    gaps.sort(key=lambda g: (-g["dur_us"], g["pid"], g["tid"], g["start_us"]))
    return gaps[:k]


def folded_stacks(spans: Sequence[TraceSpan]) -> list[str]:
    """Folded-stack lines (``pid0;run;epoch 12345``, value = self µs).

    The standard flamegraph collapse format: semicolon-joined stack,
    space, integer self-time.  Lines are sorted for determinism.
    """
    totals: dict[str, float] = {}

    def walk(node: _Node, prefix: str) -> None:
        path = f"{prefix};{node.span.name}" if prefix else node.span.name
        self_us = node.span.dur_us - sum(c.span.dur_us for c in node.children)
        if self_us > 0:
            totals[path] = totals.get(path, 0.0) + self_us
        for child in node.children:
            walk(child, path)

    for (pid, _tid), group in sorted(_group_spans(spans).items()):
        for root in _build_forest(group):
            walk(root, f"pid{pid}")
    return [f"{path} {int(round(value))}"
            for path, value in sorted(totals.items())]


# ---------------------------------------------------------------------------
# The analysis bundle
# ---------------------------------------------------------------------------

@dataclass
class TraceAnalysis:
    """Everything one ``repro analyze`` invocation derives from a trace."""

    span_count: int
    pids: list[int]
    aligned: bool
    wall_us: float
    critical_path: list[dict[str, Any]]
    shares: dict[str, float]
    overlap: dict[str, Any]
    spans_table: list[dict[str, Any]]
    gaps_table: list[dict[str, Any]]
    folded: list[str]

    def to_payload(self) -> dict[str, Any]:
        return {
            "schema": TRACE_ANALYSIS_SCHEMA,
            "span_count": self.span_count,
            "pids": self.pids,
            "aligned": self.aligned,
            "wall_us": self.wall_us,
            "critical_path": self.critical_path,
            "critical_path_shares": self.shares,
            "overlap": self.overlap,
            "top_spans": self.spans_table,
            "top_gaps": self.gaps_table,
        }

    def render(self) -> str:
        lines = [
            f"trace analysis: {self.span_count} span(s), "
            f"{len(self.pids)} process(es), wall {self.wall_us / 1e3:.3f} ms"
            + ("  [clock-aligned]" if self.aligned else "")
        ]
        if self.critical_path:
            straggler = self.critical_path[0]["pid"]
            lines.append(f"critical path (straggler pid {straggler}, "
                         f"{len(self.critical_path)} segment(s)):")
            for name, share in sorted(self.shares.items(),
                                      key=lambda kv: (-kv[1], kv[0])):
                dur_ms = share * sum(s["dur_us"] for s in self.critical_path) / 1e3
                lines.append(f"  {name:<28}{100 * share:>7.1f}%  {dur_ms:>10.3f} ms")
        frac = self.overlap.get("fraction")
        lines.append(
            "comms/compute overlap: "
            + (f"{frac:.3f} "
               f"({self.overlap['overlap_us'] / 1e3:.3f} of "
               f"{self.overlap['comms_us'] / 1e3:.3f} ms comms hidden)"
               if frac is not None else "-- (no comms spans)")
        )
        if self.spans_table:
            header = (f"  {'Span':<28}{'Calls':>7}{'Total ms':>11}"
                      f"{'Mean ms':>10}{'Max ms':>10}{'Wall%':>7}")
            lines += ["top spans:", header, "  " + "-" * (len(header) - 2)]
            for row in self.spans_table:
                lines.append(
                    f"  {row['name']:<28}{row['calls']:>7}"
                    f"{row['total_us'] / 1e3:>11.3f}{row['mean_us'] / 1e3:>10.3f}"
                    f"{row['max_us'] / 1e3:>10.3f}"
                    f"{100 * row['share_of_wall']:>6.1f}%"
                )
        if self.gaps_table:
            lines.append("largest gaps (idle between siblings):")
            for gap in self.gaps_table:
                lines.append(
                    f"  pid{gap['pid']}/tid{gap['tid']} under "
                    f"{gap['parent']:<20} at {gap['start_us'] / 1e3:>10.3f} ms"
                    f"  {gap['dur_us'] / 1e3:>10.3f} ms"
                )
        return "\n".join(lines)


def analyze_trace(source: dict[str, Any] | Sequence[dict[str, Any]] | Sequence[TraceSpan],
                  *, top: int = 10, align: bool | None = None) -> TraceAnalysis:
    """Analyze a Chrome trace document, event list, or span list."""
    if isinstance(source, dict):
        spans = spans_from_events(source.get("traceEvents") or [])
    else:
        items = list(source)
        if items and isinstance(items[0], TraceSpan):
            spans = items  # type: ignore[assignment]
        else:
            spans = spans_from_events(items)  # type: ignore[arg-type]
    if align is None:
        align = _origins_look_disjoint(spans)
    if align:
        spans = align_span_origins(spans)
    wall = (max(s.end_us for s in spans) - min(s.start_us for s in spans)
            if spans else 0.0)
    path = critical_path(spans)
    return TraceAnalysis(
        span_count=len(spans),
        pids=sorted({s.pid for s in spans}),
        aligned=bool(align and spans),
        wall_us=wall,
        critical_path=path,
        shares=critical_path_shares(path),
        overlap=overlap_stats(spans),
        spans_table=top_spans(spans, k=top),
        gaps_table=top_gaps(spans, k=top),
        folded=folded_stacks(spans),
    )


# ---------------------------------------------------------------------------
# Campaign directories: spans reconstructed from event streams
# ---------------------------------------------------------------------------

def spans_from_campaign_events(events: Iterable[Any]) -> list[TraceSpan]:
    """Reconstruct worker spans from a campaign's lifecycle events.

    ``run_start``/``run_stop`` pairs become per-worker ``run`` spans and
    ``epoch`` events (which carry their duration) become nested ``epoch``
    spans — enough structure for critical-path and straggler analysis of
    a campaign without any worker having written a full trace.  Serving
    runs reconstruct the same way: ``scenario_start``/``scenario_stop``
    pairs become ``serve:<scenario>`` spans and per-query ``query``
    events (which carry their latency) become nested ``query`` spans.
    Event ``time_s`` values are epoch seconds (one shared clock), so no
    origin alignment is needed.
    """
    spans: list[TraceSpan] = []
    open_runs: dict[int, tuple[float, dict[str, Any]]] = {}
    open_scenarios: dict[int, tuple[float, dict[str, Any]]] = {}
    last_seen: dict[int, float] = {}
    for event in events:
        pid = int(getattr(event, "pid", 0))
        t_us = float(getattr(event, "time_s", 0.0)) * 1e6
        name = getattr(event, "name", "")
        args = dict(getattr(event, "args", {}) or {})
        last_seen[pid] = max(last_seen.get(pid, t_us), t_us)
        if name == "run_start":
            open_runs[pid] = (t_us, args)
        elif name == "run_stop":
            start = open_runs.pop(pid, None)
            if start is not None:
                start_us, start_args = start
                label = start_args.get("benchmark", "run")
                spans.append(TraceSpan(
                    name=f"run:{label}", pid=pid, tid=0,
                    start_us=start_us, end_us=max(t_us, start_us),
                    args={**start_args, **args}))
        elif name == "epoch":
            dur_us = float(args.get("epoch_seconds", 0.0)) * 1e6
            spans.append(TraceSpan(
                name="epoch", pid=pid, tid=0,
                start_us=t_us - max(dur_us, 0.0), end_us=t_us, args=args))
        elif name == "scenario_start":
            open_scenarios[pid] = (t_us, args)
        elif name == "scenario_stop":
            start = open_scenarios.pop(pid, None)
            if start is not None:
                start_us, start_args = start
                label = start_args.get("scenario", "scenario")
                spans.append(TraceSpan(
                    name=f"serve:{label}", pid=pid, tid=0,
                    start_us=start_us, end_us=max(t_us, start_us),
                    args={**start_args, **args}))
        elif name == "query":
            dur_us = float(args.get("latency_s", 0.0)) * 1e6
            spans.append(TraceSpan(
                name="query", pid=pid, tid=0,
                start_us=t_us - max(dur_us, 0.0), end_us=t_us, args=args))
    # Unbalanced run_start (worker died mid-run): close at its last event
    # so failed cells still contribute a span instead of vanishing.
    for pid, (start_us, start_args) in sorted(open_runs.items()):
        label = start_args.get("benchmark", "run")
        spans.append(TraceSpan(
            name=f"run:{label}", pid=pid, tid=0, start_us=start_us,
            end_us=max(last_seen.get(pid, start_us), start_us),
            args={**start_args, "truncated": True}))
    for pid, (start_us, start_args) in sorted(open_scenarios.items()):
        label = start_args.get("scenario", "scenario")
        spans.append(TraceSpan(
            name=f"serve:{label}", pid=pid, tid=0, start_us=start_us,
            end_us=max(last_seen.get(pid, start_us), start_us),
            args={**start_args, "truncated": True}))
    return spans


def analyze_campaign_dir(campaign_dir: str | Path, *, top: int = 10) -> TraceAnalysis:
    """Analyze a campaign directory from its durable event streams."""
    from .events import merge_event_streams

    events_dir = Path(campaign_dir) / "events"
    streams = sorted(events_dir.glob("*.jsonl")) if events_dir.is_dir() else []
    if not streams:
        raise FileNotFoundError(
            f"{campaign_dir}: no events/*.jsonl streams to analyze "
            "(was the campaign run with --save?)")
    spans = spans_from_campaign_events(merge_event_streams(streams))
    return analyze_trace(spans, top=top, align=False)
