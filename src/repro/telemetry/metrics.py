"""Run metrics: counters, gauges, and fixed-bucket histograms.

A :class:`MetricsRegistry` is the per-session home for instruments:
``registry.counter("samples_seen").inc(64)`` from anywhere that holds (or
ambiently reaches) the registry.  Snapshots are plain JSON-serializable
dicts so they travel inside :class:`~repro.core.runner.RunResult` and
submission artifacts; :meth:`MetricsRegistry.render` gives the plain-text
summary the ``repro stats`` command prints.

The null registry (:data:`NULL_METRICS`) hands out shared no-op
instruments — the zero-overhead default when telemetry is not active.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterable, Sequence

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "NULL_METRICS",
           "COMMS_LATENCY_BUCKETS", "merge_snapshots"]

# Geometric-ish default buckets (seconds-flavored): spans µs-scale steps to
# minute-scale epochs without per-metric tuning.
DEFAULT_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0)

# Finer layout for sub-millisecond comms events (bucket ready→reduced
# latency in shared memory sits well below DEFAULT_BUCKETS' first bound).
COMMS_LATENCY_BUCKETS = (1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3, 0.01, 0.05,
                         0.1, 0.5, 1.0)


class Counter:
    """Monotonically increasing count (samples seen, steps taken, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount

    def snapshot(self) -> dict[str, Any]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """Last-written value (current throughput, replay-buffer size, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def snapshot(self) -> dict[str, Any]:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Fixed-bucket histogram of observations (epoch seconds, ...).

    ``buckets`` are inclusive upper bounds; observations above the last
    bound land in an implicit overflow bucket.  Count/sum/min/max are
    tracked exactly, so means are not quantized by the bucket layout.
    """

    __slots__ = ("name", "buckets", "counts", "count", "sum", "min", "max")

    def __init__(self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS):
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("histogram buckets must be a sorted non-empty sequence")
        self.name = name
        self.buckets = tuple(float(b) for b in buckets)
        self.counts = [0] * (len(self.buckets) + 1)  # +1 overflow bucket
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect.bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.sum += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float | None:
        """Bucket-interpolated quantile estimate, ``q`` in [0, 1].

        Walks the cumulative counts to the bucket holding the ``q``-th
        observation and interpolates linearly inside it (the Prometheus
        ``histogram_quantile`` estimator).  The exactly-tracked min/max
        bound the first and overflow buckets, so the estimate never
        leaves the observed range; error is bounded by the width of one
        bucket.  ``None`` on an empty histogram.
        """
        if not self.count:
            return None
        q = min(max(float(q), 0.0), 1.0)
        target = q * self.count
        cumulative = 0
        for i, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= target:
                lo = self.min if i == 0 else self.buckets[i - 1]
                hi = self.max if i == len(self.buckets) else min(
                    self.buckets[i], self.max)
                lo = min(max(lo, self.min), hi)
                fraction = (target - cumulative) / bucket_count
                return lo + (hi - lo) * max(fraction, 0.0)
            cumulative += bucket_count
        return self.max

    def snapshot(self) -> dict[str, Any]:
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "buckets": list(self.buckets),
            "counts": list(self.counts),
        }


class _NullInstrument:
    """One object that absorbs every instrument method as a no-op."""

    __slots__ = ()
    value = 0.0
    count = 0
    sum = 0.0
    mean = 0.0

    def inc(self, amount: float = 1.0) -> None:
        return None

    def set(self, value: float) -> None:
        return None

    def observe(self, value: float) -> None:
        return None

    def quantile(self, q: float) -> None:
        return None

    def snapshot(self) -> dict[str, Any]:
        return {"type": "null"}


_NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """Named instruments for one telemetry session.

    Get-or-create semantics: asking twice for the same name returns the
    same instrument; asking for the same name as a different kind is an
    error (a name means one thing per session).
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._instruments: dict[str, Any] = {}

    def _get(self, name: str, kind, *args):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = kind(name, *args)
            self._instruments[name] = instrument
        elif not isinstance(instrument, kind):
            raise TypeError(
                f"metric {name!r} is a {type(instrument).__name__}, "
                f"not a {kind.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        if not self.enabled:
            return _NULL_INSTRUMENT
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        if not self.enabled:
            return _NULL_INSTRUMENT
        return self._get(name, Gauge)

    def histogram(self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        if not self.enabled:
            return _NULL_INSTRUMENT
        return self._get(name, Histogram, buckets)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def names(self) -> list[str]:
        return sorted(self._instruments)

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """JSON-serializable view of every instrument."""
        return {name: inst.snapshot() for name, inst in sorted(self._instruments.items())}

    def merge_snapshot(self, snapshot: dict[str, dict[str, Any]]) -> None:
        """Fold a serialized snapshot into this registry's live instruments.

        Lets a parent process absorb a worker's metrics: counters add,
        gauges take the snapshot's value, histograms pool (bucket layouts
        must match).  A no-op on a disabled registry.
        """
        if not self.enabled:
            return
        for name, inst in snapshot.items():
            kind = inst.get("type")
            if kind == "counter":
                self.counter(name).inc(inst["value"])
            elif kind == "gauge":
                self.gauge(name).set(inst["value"])
            elif kind == "histogram":
                hist = self.histogram(name, tuple(inst["buckets"]))
                if list(hist.buckets) != list(inst["buckets"]):
                    raise ValueError(f"histogram {name!r} has mismatched bucket layouts")
                hist.counts = [x + y for x, y in zip(hist.counts, inst["counts"])]
                hist.count += inst["count"]
                hist.sum += inst["sum"]
                if inst["min"] is not None:
                    hist.min = min(hist.min, inst["min"])
                if inst["max"] is not None:
                    hist.max = max(hist.max, inst["max"])
            elif kind == "null":
                continue
            else:
                raise TypeError(f"metric {name!r}: cannot merge kind {kind!r}")

    def render(self) -> str:
        """Plain-text summary table (one line per instrument)."""
        if not self._instruments:
            return "(no metrics recorded)"
        lines = [f"{'metric':<28}{'kind':<11}{'value / stats'}"]
        lines.append("-" * len(lines[0]))
        for name, inst in sorted(self._instruments.items()):
            if isinstance(inst, Counter):
                lines.append(f"{name:<28}{'counter':<11}{inst.value:g}")
            elif isinstance(inst, Gauge):
                lines.append(f"{name:<28}{'gauge':<11}{inst.value:g}")
            else:
                stats = (f"n={inst.count} mean={inst.mean:.4g}"
                         + (f" min={inst.min:.4g} max={inst.max:.4g}" if inst.count else ""))
                lines.append(f"{name:<28}{'histogram':<11}{stats}")
        return "\n".join(lines)


NULL_METRICS = MetricsRegistry(enabled=False)


def _merge_instrument(name: str, a: dict[str, Any], b: dict[str, Any]) -> dict[str, Any]:
    if a["type"] != b["type"]:
        raise TypeError(
            f"metric {name!r} has conflicting kinds: {a['type']} vs {b['type']}"
        )
    kind = a["type"]
    if kind == "counter":
        return {"type": "counter", "value": a["value"] + b["value"]}
    if kind == "gauge":
        # Gauges are last-write; across sessions "last" is ill-defined, so
        # keep the later snapshot's value (merge order = session order).
        return {"type": "gauge", "value": b["value"]}
    if kind == "histogram":
        if a["buckets"] != b["buckets"]:
            raise ValueError(f"histogram {name!r} has mismatched bucket layouts")
        mins = [m for m in (a["min"], b["min"]) if m is not None]
        maxes = [m for m in (a["max"], b["max"]) if m is not None]
        return {
            "type": "histogram",
            "count": a["count"] + b["count"],
            "sum": a["sum"] + b["sum"],
            "min": min(mins) if mins else None,
            "max": max(maxes) if maxes else None,
            "buckets": list(a["buckets"]),
            "counts": [x + y for x, y in zip(a["counts"], b["counts"])],
        }
    raise TypeError(f"metric {name!r}: cannot merge instruments of kind {kind!r}")


def merge_snapshots(snapshots: Iterable[dict[str, dict[str, Any]]]) -> dict[str, dict[str, Any]]:
    """Fold per-session :meth:`MetricsRegistry.snapshot` dicts into one view.

    Counters add, histograms pool (same bucket layout required), gauges
    keep the last session's value.  The campaign engine uses this to
    aggregate worker-process metrics parent-side.
    """
    merged: dict[str, dict[str, Any]] = {}
    for snap in snapshots:
        for name, inst in snap.items():
            if inst.get("type") == "null":
                continue
            merged[name] = (
                dict(inst) if name not in merged
                else _merge_instrument(name, merged[name], inst)
            )
    return {name: merged[name] for name in sorted(merged)}
