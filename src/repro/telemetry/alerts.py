"""Declarative alert rules over the campaign event/heartbeat streams.

The monitor renders *state*; alerting needs *transitions* — "this job
just stalled", "quality recovered".  This module turns the same file-only
surfaces into a firing/resolved lifecycle:

- An :class:`AlertRule` is data (kind + parameters), parseable from JSON,
  so a campaign can ship its alerting policy next to its spec.
- :class:`StreamFold` folds a merged event stream into per-run state
  (last progress instant, latest quality vs. target, rolling throughput,
  arena hit rate) — one ``O(1)`` update per event, so live tailers pay
  nothing for history.
- :class:`AlertEngine` evaluates every rule against a fold snapshot and
  emits ``alert_firing`` / ``alert_resolved`` transitions **as ordinary
  telemetry events**: ``alerts.jsonl`` is just another JSONL stream that
  :func:`~repro.telemetry.events.read_events` parses and an
  :class:`~repro.telemetry.events.EventCursor` tails.

Determinism is the design constraint: transitions are stamped with the
evaluation context's ``now_s`` (never a wall clock read), rules evaluate
in declaration order and subjects in sorted order, and
:func:`replay_alerts` schedules evaluations at the event timestamps of
the stream itself — so identical event streams produce bit-identical
``alerts.jsonl`` files, on any machine, at any polling cadence, under
:class:`repro.core.timing.FakeClock` or epoch time alike.

Rule kinds (each with its parameter defaults):

=====================  ==================================================
``job_stall``          no progress event/heartbeat for ``stall_after_s``
                       (30) — the monitor's stall detection as an alert;
``heartbeat_loss``     silence past ``loss_after_s`` (120): the job is
                       presumed dead, not merely slow;
``quality_regression`` after ``min_evals`` (2) evaluations the run's
                       quality sits below ``min_fraction`` (0.9) of its
                       §3.2.2 target — and stays firing if the run ends
                       there;
``throughput_drop``    latest examples/second under ``drop_ratio`` (0.5)
                       of the rolling mean of the previous ``window``
                       (4) samples;
``arena_hit_rate_drop``kernel workspace arena hit rate below
                       ``min_hit_rate`` (0.8).
=====================  ==================================================
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping

from .events import Event
from .monitor import MonitorView

__all__ = ["AlertRule", "ActiveAlert", "AlertEngine", "StreamFold",
           "AlertContext", "RULE_KINDS", "default_rules", "parse_rules",
           "load_rules_file", "replay_alerts", "render_alert_table"]

# kind -> (parameter name -> default).  A rule may override any subset;
# unknown parameters are a configuration error, caught at parse time.
RULE_KINDS: dict[str, dict[str, float]] = {
    "job_stall": {"stall_after_s": 30.0},
    "heartbeat_loss": {"loss_after_s": 120.0},
    "quality_regression": {"min_fraction": 0.9, "min_evals": 2},
    "throughput_drop": {"drop_ratio": 0.5, "window": 4},
    "arena_hit_rate_drop": {"min_hit_rate": 0.8},
}

_SEVERITIES = ("info", "warning", "critical")

# Rolling-throughput memory per run; bounds fold state on long runs.
_THROUGHPUT_KEEP = 32


@dataclass(frozen=True)
class AlertRule:
    """One declarative rule: a kind, tuned parameters, and a severity."""

    kind: str
    name: str
    severity: str = "warning"
    params: tuple[tuple[str, float], ...] = ()

    def param(self, key: str) -> float:
        for name, value in self.params:
            if name == key:
                return value
        return RULE_KINDS[self.kind][key]

    def to_payload(self) -> dict[str, Any]:
        payload: dict[str, Any] = {"rule": self.kind, "severity": self.severity}
        if self.name != self.kind:
            payload["name"] = self.name
        payload.update(dict(self.params))
        return payload


def _make_rule(kind: str, name: str | None, severity: str,
               params: Mapping[str, Any]) -> AlertRule:
    if kind not in RULE_KINDS:
        raise ValueError(
            f"unknown alert rule kind {kind!r}; known: {sorted(RULE_KINDS)}")
    if severity not in _SEVERITIES:
        raise ValueError(
            f"rule {kind!r}: unknown severity {severity!r}; "
            f"choose from {_SEVERITIES}")
    unknown = sorted(set(params) - set(RULE_KINDS[kind]))
    if unknown:
        raise ValueError(
            f"rule {kind!r}: unknown parameter(s) {unknown}; "
            f"accepts {sorted(RULE_KINDS[kind])}")
    resolved = tuple(sorted(
        (key, float(params[key])) for key in params))
    return AlertRule(kind=kind, name=name or kind, severity=severity,
                     params=resolved)


def default_rules() -> list[AlertRule]:
    """One rule of every kind at its documented defaults."""
    return [_make_rule(kind, None,
                       "critical" if kind == "heartbeat_loss" else "warning",
                       {})
            for kind in RULE_KINDS]


def parse_rules(payload: Any) -> list[AlertRule]:
    """Parse the declarative rules document: a JSON list of objects.

    Each object needs ``"rule": <kind>`` and may carry ``"name"``,
    ``"severity"``, and the kind's parameters, e.g.::

        [{"rule": "job_stall", "stall_after_s": 45},
         {"rule": "quality_regression", "min_fraction": 0.95,
          "severity": "critical"}]
    """
    if not isinstance(payload, list):
        raise ValueError("alert rules document must be a JSON list of objects")
    rules: list[AlertRule] = []
    seen: set[str] = set()
    for i, entry in enumerate(payload):
        if not isinstance(entry, dict) or "rule" not in entry:
            raise ValueError(f"alert rule #{i}: expected an object with a "
                             f"'rule' key, got {entry!r}")
        entry = dict(entry)
        kind = str(entry.pop("rule"))
        name = entry.pop("name", None)
        severity = str(entry.pop("severity", "warning"))
        rule = _make_rule(kind, None if name is None else str(name),
                          severity, entry)
        if rule.name in seen:
            raise ValueError(f"alert rule #{i}: duplicate rule name "
                             f"{rule.name!r}")
        seen.add(rule.name)
        rules.append(rule)
    return rules


def load_rules_file(path: str | Path) -> list[AlertRule]:
    path = Path(path)
    try:
        return parse_rules(json.loads(path.read_text(encoding="utf-8")))
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: not valid JSON ({exc})") from exc


@dataclass
class RunAlertState:
    """Everything the rules need to know about one (benchmark, seed) run."""

    key: str
    active: bool = False
    started: bool = False
    status: str = "pending"
    last_progress_s: float = 0.0
    target: float | None = None
    quality: float | None = None
    evals: int = 0
    throughput: list[float] = field(default_factory=list)
    arena_hit_rate: float | None = None


@dataclass(frozen=True)
class ActiveAlert:
    """One currently-firing alert (the /api/alerts and /metrics view)."""

    rule: str
    kind: str
    key: str
    severity: str
    since_s: float
    value: float
    detail: str

    def to_payload(self) -> dict[str, Any]:
        return {"rule": self.rule, "kind": self.kind, "key": self.key,
                "severity": self.severity, "since_s": self.since_s,
                "value": self.value, "detail": self.detail}


@dataclass(frozen=True)
class AlertContext:
    """A point-in-time evaluation input: the fold state at ``now_s``."""

    now_s: float
    runs: Mapping[str, RunAlertState]


class StreamFold:
    """Incrementally fold a time-ordered event stream into run states.

    Events must be applied in timeline order (what
    :func:`~repro.telemetry.events.merge_event_streams` and the tailers
    produce).  Worker events carry no benchmark/seed in their args, only
    a ``pid`` (the job ordinal) — ``run_start``/``job_start`` establish
    the pid→run mapping the progress events resolve through.
    """

    def __init__(self):
        self.runs: dict[str, RunAlertState] = {}
        self._key_by_pid: dict[int, str] = {}

    def _run(self, key: str) -> RunAlertState:
        state = self.runs.get(key)
        if state is None:
            state = self.runs[key] = RunAlertState(key=key)
        return state

    def _resolve(self, event: Event) -> RunAlertState | None:
        key = self._key_by_pid.get(event.pid)
        return None if key is None else self._run(key)

    def apply(self, event: Event) -> None:
        args = event.args
        name = event.name
        if name in ("run_start", "job_start"):
            if "benchmark" not in args or "seed" not in args:
                return
            key = f"{args['benchmark']}/{args['seed']}"
            self._key_by_pid[event.pid] = key
            state = self._run(key)
            if name == "run_start":
                # A (re)started attempt resets the run-scoped signals.
                state.active = True
                state.started = True
                state.status = "running"
                state.quality = None
                state.evals = 0
                state.throughput = []
                state.arena_hit_rate = None
                if args.get("target") is not None:
                    state.target = float(args["target"])
            state.last_progress_s = max(state.last_progress_s, event.time_s)
        elif name == "epoch":
            state = self._resolve(event)
            if state is None:
                return
            state.last_progress_s = max(state.last_progress_s, event.time_s)
            seconds = args.get("epoch_seconds")
            samples = args.get("samples")
            if seconds and samples:
                state.throughput.append(float(samples) / float(seconds))
                del state.throughput[:-_THROUGHPUT_KEEP]
        elif name == "eval":
            state = self._resolve(event)
            if state is None:
                return
            state.last_progress_s = max(state.last_progress_s, event.time_s)
            if "quality" in args:
                state.quality = float(args["quality"])
                state.evals += 1
        elif name == "run_stop":
            state = self._resolve(event)
            if state is None and "benchmark" in args and "seed" in args:
                state = self._run(f"{args['benchmark']}/{args['seed']}")
            if state is None:
                return
            state.active = False
            state.status = str(args.get("status", "stopped"))
            if args.get("quality") is not None:
                state.quality = float(args["quality"])
        elif name == "job_finished":
            # Campaign-stream confirmation; authoritative terminal status.
            if "benchmark" in args and "seed" in args:
                state = self._run(f"{args['benchmark']}/{args['seed']}")
                state.active = bool(args.get("will_retry", False))
                state.status = str(args.get("status", state.status))
        elif name == "arena_stats":
            state = self._resolve(event)
            if state is not None and "hit_rate" in args:
                state.arena_hit_rate = float(args["hit_rate"])

    def apply_all(self, events: Iterable[Event]) -> None:
        for event in events:
            self.apply(event)

    def absorb_view(self, view: MonitorView) -> None:
        """Fold live heartbeat knowledge (the monitor's stall inputs) in.

        Heartbeats are latest-state-only, so this is for live evaluation;
        replay over a finished stream never needs it.  A fresh heartbeat
        advances the run's progress instant exactly as the monitor's
        stall detection would observe it.
        """
        for job in view.jobs:
            state = self._run(job.key)
            if job.status in ("running", "stalled"):
                state.active = True
                state.started = True
            elif job.status != "pending":
                state.active = False
                state.status = job.status
            if job.heartbeat_age_s is not None:
                beat_s = view.now_s - job.heartbeat_age_s
                state.last_progress_s = max(state.last_progress_s, beat_s)
            if job.quality is not None and state.quality is None:
                state.quality = job.quality

    def context(self, now_s: float) -> AlertContext:
        return AlertContext(now_s=float(now_s), runs=self.runs)


def _check(rule: AlertRule, state: RunAlertState,
           now_s: float) -> tuple[bool, float, str] | None:
    """One (rule, run) condition: (firing, value, detail), or None = N/A."""
    if rule.kind == "job_stall":
        if not state.active:
            return None
        age = now_s - state.last_progress_s
        limit = rule.param("stall_after_s")
        return (age > limit, age,
                f"no progress for {age:.1f}s (stall threshold {limit:g}s)")
    if rule.kind == "heartbeat_loss":
        if not state.active:
            return None
        age = now_s - state.last_progress_s
        limit = rule.param("loss_after_s")
        return (age > limit, age,
                f"silent for {age:.1f}s (loss threshold {limit:g}s)")
    if rule.kind == "quality_regression":
        if (state.target is None or state.quality is None
                or state.evals < rule.param("min_evals")):
            return None
        if not state.active and state.status == "reached":
            return (False, state.quality, "run reached its target")
        floor = rule.param("min_fraction") * state.target
        return (state.quality < floor, state.quality,
                f"quality {state.quality:.4f} vs floor {floor:.4f} "
                f"({rule.param('min_fraction'):g} x target {state.target:g})")
    if rule.kind == "throughput_drop":
        window = int(rule.param("window"))
        if not state.active or len(state.throughput) < 2:
            return None
        latest = state.throughput[-1]
        baseline_window = state.throughput[:-1][-window:]
        baseline = sum(baseline_window) / len(baseline_window)
        if baseline <= 0:
            return None
        floor = rule.param("drop_ratio") * baseline
        return (latest < floor, latest,
                f"{latest:.4g} ex/s vs rolling baseline {baseline:.4g} "
                f"(floor {floor:.4g})")
    if rule.kind == "arena_hit_rate_drop":
        if not state.active or state.arena_hit_rate is None:
            return None
        floor = rule.param("min_hit_rate")
        return (state.arena_hit_rate < floor, state.arena_hit_rate,
                f"arena hit rate {state.arena_hit_rate:.3f} below "
                f"{floor:g}")
    raise ValueError(f"unknown alert rule kind {rule.kind!r}")


class AlertEngine:
    """Stateful firing/resolved lifecycle over rule evaluations.

    ``sink`` (e.g. ``EventLog.write``) receives every transition as it
    happens — the append-only ``alerts.jsonl`` contract.  The engine
    never reads a clock: every transition is stamped ``ctx.now_s``.
    """

    def __init__(self, rules: Iterable[AlertRule] | None = None,
                 sink: Callable[[Event], None] | None = None):
        self.rules = list(rules) if rules is not None else default_rules()
        self.sink = sink
        self._active: dict[tuple[str, str], ActiveAlert] = {}
        self.transitions = 0

    def active(self) -> list[ActiveAlert]:
        """Currently-firing alerts, in deterministic (rule, key) order."""
        return [self._active[k] for k in sorted(self._active)]

    def _emit(self, event: Event) -> Event:
        self.transitions += 1
        if self.sink is not None:
            self.sink(event)
        return event

    def evaluate(self, ctx: AlertContext) -> list[Event]:
        """Evaluate every rule at ``ctx.now_s``; return new transitions."""
        out: list[Event] = []
        for rule in self.rules:
            seen: set[tuple[str, str]] = set()
            for key in sorted(ctx.runs):
                state = ctx.runs[key]
                verdict = _check(rule, state, ctx.now_s)
                if verdict is None:
                    continue
                firing, value, detail = verdict
                slot = (rule.name, key)
                seen.add(slot)
                if firing and slot not in self._active:
                    self._active[slot] = ActiveAlert(
                        rule=rule.name, kind=rule.kind, key=key,
                        severity=rule.severity, since_s=ctx.now_s,
                        value=value, detail=detail)
                    out.append(self._emit(Event(
                        name="alert_firing", time_s=ctx.now_s, pid=0,
                        args={"rule": rule.name, "kind": rule.kind,
                              "key": key, "severity": rule.severity,
                              "value": value, "detail": detail})))
                elif not firing and slot in self._active:
                    del self._active[slot]
                    out.append(self._emit(Event(
                        name="alert_resolved", time_s=ctx.now_s, pid=0,
                        args={"rule": rule.name, "kind": rule.kind,
                              "key": key, "severity": rule.severity,
                              "value": value, "detail": detail})))
            # Subjects that vanished (rule no longer applicable — e.g. the
            # run ended) resolve rather than firing forever.
            for slot in [s for s in self._active
                         if s[0] == rule.name and s not in seen]:
                stale = self._active.pop(slot)
                out.append(self._emit(Event(
                    name="alert_resolved", time_s=ctx.now_s, pid=0,
                    args={"rule": stale.rule, "kind": stale.kind,
                          "key": stale.key, "severity": stale.severity,
                          "value": stale.value,
                          "detail": "subject no longer evaluable"})))
        return out


def replay_alerts(events: list[Event],
                  rules: Iterable[AlertRule] | None = None,
                  *,
                  now_s: float | None = None,
                  sink: Callable[[Event], None] | None = None,
                  ) -> tuple[AlertEngine, list[Event]]:
    """Deterministically replay a finished (or copied) event stream.

    The evaluation schedule is the stream's own timestamps: at each
    distinct instant the rules run *before* folding that instant's
    events (so a silent gap between two progress events fires the
    age-based rules, stamped at the moment the silence ended) and again
    *after* (so recovery resolves at the same instant it happened).  A
    final evaluation at ``now_s`` (default: the last event time) fires
    age rules for silence at the tail.  No wall clock is consulted
    anywhere, so two replays of identical streams emit byte-identical
    transition sequences.
    """
    engine = AlertEngine(rules, sink=sink)
    fold = StreamFold()
    transitions: list[Event] = []
    i, n = 0, len(events)
    while i < n:
        t = events[i].time_s
        if fold.runs:
            transitions.extend(engine.evaluate(fold.context(t)))
        while i < n and events[i].time_s == t:
            fold.apply(events[i])
            i += 1
        transitions.extend(engine.evaluate(fold.context(t)))
    final_now = now_s if now_s is not None else (
        events[-1].time_s if events else 0.0)
    transitions.extend(engine.evaluate(fold.context(final_now)))
    return engine, transitions


def render_alert_table(transitions: list[Event],
                       active: list[ActiveAlert]) -> str:
    """The ``repro alerts`` text view: transition log + firing summary."""
    lines: list[str] = []
    if transitions:
        header = (f"{'t (s)':>12}  {'event':<16}{'rule':<22}"
                  f"{'job':<28}{'value':>12}  detail")
        lines.append(header)
        lines.append("-" * len(header))
        for ev in transitions:
            a = ev.args
            state = "FIRING" if ev.name == "alert_firing" else "resolved"
            lines.append(
                f"{ev.time_s:>12.3f}  {state:<16}{a.get('rule', '?'):<22}"
                f"{a.get('key', '?'):<28}{a.get('value', 0.0):>12.4g}  "
                f"{a.get('detail', '')}")
    else:
        lines.append("(no alert transitions)")
    lines.append("")
    if active:
        lines.append(f"{len(active)} alert(s) firing:")
        for alert in active:
            lines.append(f"  [{alert.severity}] {alert.rule} {alert.key} "
                         f"since t={alert.since_s:.3f}s — {alert.detail}")
    else:
        lines.append("no alerts firing")
    return "\n".join(lines)
