"""Profiling hooks and per-phase decomposition of training sessions.

Three pieces:

- :class:`Instrumented` — an opt-in wrapper that makes any
  :class:`~repro.framework.module.Module` emit ``forward/<label>`` and
  ``backward/<label>`` spans to the ambient tracer;
- :func:`decompose_log_events` — reduce a §4.1 structured log to the
  DAWNBench-style question "where did the wall-clock go": init vs. model
  creation vs. train epochs vs. eval;
- :func:`trace_from_log_events` — reconstruct a Chrome-loadable trace
  from the paired ``*_start``/``*_stop`` events of a saved log, so
  ``repro trace`` works on published artifacts, not just live runs.

:class:`RunTelemetry` is the serializable snapshot a finished run carries
in :class:`~repro.core.runner.RunResult.telemetry`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable

from ..framework.module import Module
from .context import current_metrics, current_tracer
from .trace import chrome_trace_from_intervals

if TYPE_CHECKING:  # the runtime import is lazy: core itself imports telemetry
    from ..core.mllog import LogEvent

__all__ = ["Instrumented", "PhaseDecomposition", "RunTelemetry",
           "decompose_log_events", "merged_run_telemetry", "trace_from_log_events"]


@dataclass
class RunTelemetry:
    """Serializable telemetry snapshot attached to a finished run.

    ``series`` is the :class:`~repro.telemetry.timeseries.RunSeries`
    payload — per-run sampled trajectories (throughput, eval quality,
    arena hit rate, all-reduce traffic) recorded at epoch/eval
    boundaries, rendered by ``repro stats --series``.
    """

    trace_events: list[dict[str, Any]] = field(default_factory=list)
    metrics: dict[str, dict[str, Any]] = field(default_factory=dict)
    series: dict[str, Any] = field(default_factory=dict)
    op_profile: dict[str, Any] = field(default_factory=dict)

    def to_chrome_trace(self) -> dict[str, Any]:
        return {"traceEvents": list(self.trace_events), "displayTimeUnit": "ms"}


def merged_run_telemetry(snapshots: Iterable[RunTelemetry | None]) -> RunTelemetry:
    """Compose per-run snapshots into one campaign-level view.

    Trace events concatenate — each run's tracer already stamped its
    events with a distinct pid (the job ordinal), so parallel workers
    land on separate, named process rows in the Chrome viewer; metadata
    events are deduped afterwards because retry attempts reuse their
    cell's pid and would otherwise fight over the row label.  Metrics
    merge via :func:`~repro.telemetry.metrics.merge_snapshots`, op
    profiles via :func:`~repro.telemetry.opprof.merge_op_profiles`.
    Series stay per-run (a merged trajectory has no meaning) and are
    dropped from the campaign-level view.
    """
    from .metrics import merge_snapshots
    from .opprof import merge_op_profiles
    from .trace import dedupe_metadata_events

    present = [s for s in snapshots if s is not None]
    return RunTelemetry(
        trace_events=dedupe_metadata_events(
            e for s in present for e in s.trace_events),
        metrics=merge_snapshots(s.metrics for s in present),
        op_profile=merge_op_profiles(
            s.op_profile for s in present if s.op_profile),
    )


class Instrumented(Module):
    """Wrap a module so its forward/backward passes emit trace spans.

    The wrapper is transparent for training (parameters, modes, and state
    flow through) but parameter names gain an ``inner.`` prefix — use it
    for profiling sessions, not for checkpoint-compatible runs.  The
    backward pass of the tape-based autodiff starts from a loss tensor,
    not from the module, so the wrapper exposes :meth:`backward` to time
    it under the same label::

        model = Instrumented(MiniResNet(...), label="resnet")
        loss = F.cross_entropy(model(x), y)
        model.backward(loss)
    """

    def __init__(self, inner: Module, label: str | None = None):
        super().__init__()
        self.inner = inner
        self._label = label or type(inner).__name__

    def forward(self, *args, **kwargs):
        with current_tracer().span(f"forward/{self._label}"):
            out = self.inner(*args, **kwargs)
        current_metrics().counter(f"{self._label}.forward_calls").inc()
        return out

    def backward(self, loss) -> None:
        """Run ``loss.backward()`` inside a ``backward/<label>`` span."""
        with current_tracer().span(f"backward/{self._label}"):
            loss.backward()
        current_metrics().counter(f"{self._label}.backward_calls").inc()


@dataclass(frozen=True)
class PhaseDecomposition:
    """Where one run's wall-clock went, in seconds, from its log."""

    init_s: float
    model_creation_s: float
    run_s: float
    train_s: float  # sum of epoch intervals
    eval_s: float  # sum of eval intervals
    epochs: int
    evals: int

    @property
    def other_s(self) -> float:
        """Run time not inside an epoch or an eval (loop overhead)."""
        return max(self.run_s - self.train_s - self.eval_s, 0.0)


def _paired_intervals(events: Iterable["LogEvent"]) -> list[tuple[str, float, float, dict]]:
    """Match ``*_start``/``*_stop`` events into (name, start_s, end_s, args).

    Pairing is FIFO per (stem, epoch_num) so repeated epochs/evals pair
    with their own stop even when logs interleave phases.
    """
    open_marks: dict[tuple[str, Any], list[LogEvent]] = {}
    intervals: list[tuple[str, float, float, dict]] = []
    for event in events:
        if event.key.endswith("_start"):
            stem = event.key[: -len("_start")]
            open_marks.setdefault((stem, event.metadata.get("epoch_num")), []).append(event)
        elif event.key.endswith("_stop"):
            stem = event.key[: -len("_stop")]
            stack = open_marks.get((stem, event.metadata.get("epoch_num")))
            if not stack:
                continue  # unbalanced stop; tolerate, review catches it
            start = stack.pop(0)
            name = stem
            args = dict(start.metadata)
            if "epoch_num" in args:
                name = f"{stem} {args['epoch_num']}"
            intervals.append((name, start.time_ms / 1000.0, event.time_ms / 1000.0, args))
    return intervals


def decompose_log_events(events: Iterable["LogEvent"]) -> PhaseDecomposition:
    """Reduce a structured log to per-phase seconds."""
    totals = {"init": 0.0, "model_creation": 0.0, "run": 0.0, "epoch": 0.0, "eval": 0.0}
    counts = {"epoch": 0, "eval": 0}
    for name, start_s, end_s, _ in _paired_intervals(events):
        stem = name.split(" ")[0]
        if stem in totals:
            totals[stem] += end_s - start_s
        if stem in counts:
            counts[stem] += 1
    return PhaseDecomposition(
        init_s=totals["init"],
        model_creation_s=totals["model_creation"],
        run_s=totals["run"],
        train_s=totals["epoch"],
        eval_s=totals["eval"],
        epochs=counts["epoch"],
        evals=counts["eval"],
    )


def trace_from_log_events(events: Iterable["LogEvent"], pid: int = 0) -> dict[str, Any]:
    """A Chrome trace document reconstructed from a structured log.

    Interval events become nested "X" spans (the ``run`` span contains the
    epochs and evals by timestamp containment); ``eval_accuracy`` events
    become instant markers carrying the quality value.
    """
    from ..core.mllog import Keys  # lazy: core imports telemetry at load time

    events = list(events)
    doc = chrome_trace_from_intervals(_paired_intervals(events), pid=pid)
    for event in events:
        if event.key == Keys.EVAL_ACCURACY:
            doc["traceEvents"].append({
                "name": "eval_accuracy",
                "cat": "repro",
                "ph": "i",
                "s": "p",
                "ts": event.time_ms * 1000.0,
                "pid": pid,
                "tid": 0,
                "args": {"value": event.value, **event.metadata},
            })
    return doc
