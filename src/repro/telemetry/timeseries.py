"""Per-run sampled time-series (throughput, quality, arena, comms traffic).

DAWNBench's core lesson is that a time-to-accuracy *number* is only
trustworthy with the *trajectory* behind it; the paper's §4.1 requires
"quality metric evaluated at prescribed intervals" for the same reason.
:class:`RunSeries` is that trajectory: named series sampled at epoch and
eval boundaries by the runner, serialized inside
:class:`~repro.telemetry.profile.RunTelemetry`, persisted in the
``# repro-run`` artifact header, and rendered by ``repro stats --series``.

Samples carry ``(t_s, epoch, value)`` where ``t_s`` is seconds since
``run_start`` on the run's own clock — relative time, so series from
different processes and machines are directly comparable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

__all__ = ["SeriesPoint", "RunSeries", "series_rows", "render_series_table"]

# The canonical series the runner records (others may appear; the
# renderer lists whatever a run carries, in this order first).
STANDARD_SERIES = ("examples_per_second", "eval_quality", "epoch_seconds",
                   "kernel_arena_hit_rate", "allreduce_bytes")

_SPARK_LEVELS = " .:-=+*#%@"


@dataclass(frozen=True)
class SeriesPoint:
    """One sample: relative time, epoch it was taken at, value."""

    t_s: float
    epoch: int
    value: float


class RunSeries:
    """Named per-run series with JSON round-trip.

    Recording is append-only and cheap (one tuple per sample); the
    payload form is ``{name: [[t_s, epoch, value], ...]}`` — compact,
    sorted, and stable, so it diffs cleanly inside artifact headers.
    """

    def __init__(self):
        self._series: dict[str, list[SeriesPoint]] = {}

    def record(self, name: str, value: float, *, t_s: float, epoch: int) -> None:
        self._series.setdefault(name, []).append(
            SeriesPoint(t_s=float(t_s), epoch=int(epoch), value=float(value)))

    def names(self) -> list[str]:
        return sorted(self._series)

    def points(self, name: str) -> list[SeriesPoint]:
        return list(self._series.get(name, []))

    def __bool__(self) -> bool:
        return bool(self._series)

    def __contains__(self, name: str) -> bool:
        return name in self._series

    def to_payload(self) -> dict[str, list[list[float]]]:
        return {
            name: [[p.t_s, p.epoch, p.value] for p in points]
            for name, points in sorted(self._series.items())
        }

    @classmethod
    def from_payload(cls, payload: dict[str, Any] | None) -> "RunSeries":
        series = cls()
        for name, raw_points in (payload or {}).items():
            series._series[name] = [
                SeriesPoint(t_s=float(t), epoch=int(e), value=float(v))
                for t, e, v in raw_points
            ]
        return series


def _sparkline(values: list[float], width: int = 16) -> str:
    """A pure-ASCII sparkline of the series shape (terminal-safe)."""
    if not values:
        return ""
    if len(values) > width:  # downsample by striding, keeping the endpoints
        idx = [round(i * (len(values) - 1) / (width - 1)) for i in range(width)]
        values = [values[i] for i in idx]
    lo, hi = min(values), max(values)
    if hi <= lo:
        return _SPARK_LEVELS[len(_SPARK_LEVELS) // 2] * len(values)
    top = len(_SPARK_LEVELS) - 1
    return "".join(
        _SPARK_LEVELS[round((v - lo) / (hi - lo) * top)] for v in values
    )


def _ordered_names(names: Iterable[str]) -> list[str]:
    names = set(names)
    ordered = [n for n in STANDARD_SERIES if n in names]
    ordered.extend(sorted(names - set(STANDARD_SERIES)))
    return ordered


def series_rows(runs_by_benchmark: dict[str, list[Any]]) -> list[dict[str, Any]]:
    """Flatten saved runs into renderable series rows.

    Accepts the same ``benchmark -> [RunResult]`` shape the phase table
    uses; runs without recorded series contribute nothing.
    """
    rows: list[dict[str, Any]] = []
    for benchmark, runs in sorted(runs_by_benchmark.items()):
        for run in runs:
            payload = getattr(run.telemetry, "series", None) if run.telemetry else None
            if not payload:
                continue
            series = RunSeries.from_payload(payload)
            for name in _ordered_names(series.names()):
                points = series.points(name)
                values = [p.value for p in points]
                rows.append({
                    "benchmark": benchmark,
                    "seed": run.seed,
                    "series": name,
                    "n": len(points),
                    "first": values[0],
                    "last": values[-1],
                    "min": min(values),
                    "max": max(values),
                    "spark": _sparkline(values),
                })
    return rows


def render_series_table(runs_by_benchmark: dict[str, list[Any]]) -> str:
    """The ``repro stats --series`` table: one row per (run, series)."""
    rows = series_rows(runs_by_benchmark)
    if not rows:
        return "(no per-run series recorded in these submissions)"
    header = (
        f"{'Benchmark':<26}{'Seed':>5}  {'Series':<24}{'N':>4}"
        f"{'First':>11}{'Last':>11}{'Min':>11}{'Max':>11}  Trend"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['benchmark']:<26}{row['seed']:>5}  {row['series']:<24}"
            f"{row['n']:>4}{row['first']:>11.4g}{row['last']:>11.4g}"
            f"{row['min']:>11.4g}{row['max']:>11.4g}  {row['spark']}"
        )
    return "\n".join(lines)
