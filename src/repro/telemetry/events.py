"""Streaming observability: event bus, JSONL event logs, and heartbeats.

The trace/metrics layer answers *where did the time go* after the fact;
this module answers *what is happening right now*.  Three pieces:

- :class:`EventBus` — a synchronous publish/subscribe fan-out for
  lifecycle and progress events.  The runner, campaign engine, comms
  engine, and kernel arena publish to the ambient bus
  (:func:`~repro.telemetry.context.current_events`); sinks subscribe.
  A disabled bus (the default when no telemetry session is active)
  collapses every publish to one attribute check.
- :class:`EventLog` — an append-only JSONL sink.  Each event is one
  ``write()`` of a complete line, so a killed process leaves at most one
  truncated final line; :func:`read_events` tolerates exactly that
  (crash-tolerant tail parsing) while still rejecting corruption in the
  middle of a file.
- :class:`HeartbeatWriter` / :func:`read_heartbeat` — a single-record
  liveness file per job (pid, epoch, step, last metric snapshot),
  atomically replaced on every beat so readers never see a torn write.
  The campaign monitor derives per-job progress and stall detection from
  these files alone.

Timestamps come from an injectable ``clock()`` so the whole layer is
deterministic under :class:`repro.core.timing.FakeClock`; real sessions
default to ``time.time`` (epoch seconds), the only clock comparable
*across* worker processes.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable

__all__ = [
    "Event",
    "EventBus",
    "EventCursor",
    "EventLog",
    "Heartbeat",
    "HeartbeatCache",
    "HeartbeatWriter",
    "NULL_EVENTS",
    "merge_event_streams",
    "read_events",
    "read_heartbeat",
]


@dataclass(frozen=True)
class Event:
    """One published lifecycle/progress record."""

    name: str
    time_s: float
    pid: int = 0
    args: dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> str:
        return json.dumps(
            {"name": self.name, "time_s": self.time_s, "pid": self.pid,
             "args": self.args},
            sort_keys=True, default=_jsonify,
        )

    @staticmethod
    def from_payload(payload: dict[str, Any]) -> "Event":
        return Event(
            name=str(payload["name"]),
            time_s=float(payload["time_s"]),
            pid=int(payload.get("pid", 0)),
            args=dict(payload.get("args", {})),
        )


def _jsonify(obj: Any):
    if hasattr(obj, "tolist"):  # numpy arrays and scalars
        return obj.tolist()
    if hasattr(obj, "item"):
        return obj.item()
    if isinstance(obj, (set, frozenset)):
        return sorted(obj)
    raise TypeError(f"unserializable event value of type {type(obj).__name__}")


class EventBus:
    """Synchronous fan-out of :class:`Event` records to subscribers.

    Publishing on a disabled bus is a no-op (the ambient default); a
    subscriber that raises propagates to the publisher — sinks are part
    of the session, not best-effort listeners, so a broken sink should
    surface, not silently drop records.
    """

    def __init__(self, clock: Callable[[], float] | None = None,
                 enabled: bool = True, pid: int = 0):
        self.clock = clock or time.time
        self.enabled = enabled
        self.pid = pid
        self._subscribers: list[Callable[[Event], None]] = []

    def subscribe(self, sink: Callable[[Event], None]) -> Callable[[], None]:
        """Attach a sink; returns a zero-arg unsubscribe callable."""
        self._subscribers.append(sink)

        def unsubscribe() -> None:
            if sink in self._subscribers:
                self._subscribers.remove(sink)

        return unsubscribe

    def publish(self, name: str, **args: Any) -> Event | None:
        """Build an event at the bus clock's now and hand it to every sink."""
        if not self.enabled:
            return None
        event = Event(name=name, time_s=float(self.clock()), pid=self.pid,
                      args=args)
        for sink in list(self._subscribers):
            sink(event)
        return event


NULL_EVENTS = EventBus(enabled=False)


class EventLog:
    """Append-only JSONL event sink.

    Every event is serialized to one line and written with a single
    ``write`` + ``flush``, so concurrent appenders interleave at line
    granularity and a crash can truncate at most the final line — the
    exact failure :func:`read_events` is built to tolerate.  Parent
    directories are created on open; ``mode="a"`` (the default) lets a
    resumed campaign extend its previous stream.
    """

    def __init__(self, path: str | Path, mode: str = "a"):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, mode, encoding="utf-8")

    def write(self, event: Event) -> None:
        self._fh.write(event.to_json() + "\n")
        self._fh.flush()

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_events(path: str | Path) -> list[Event]:
    """Parse a JSONL event stream, tolerating a truncated final line.

    A worker killed mid-write leaves a partial last line; that line is
    dropped silently.  A malformed line *before* the end of the file is
    real corruption and raises ``ValueError`` — tolerance is scoped to
    the one failure appenders can actually produce.  A missing file is an
    empty stream (the job may simply not have started).
    """
    path = Path(path)
    if not path.is_file():
        return []
    raw_lines = path.read_text(encoding="utf-8", errors="replace").split("\n")
    # Trailing "" after a final newline is not a record.
    while raw_lines and raw_lines[-1] == "":
        raw_lines.pop()
    events: list[Event] = []
    last = len(raw_lines) - 1
    for i, line in enumerate(raw_lines):
        if not line.strip():
            continue
        try:
            events.append(Event.from_payload(json.loads(line)))
        except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
            if i == last:
                break  # truncated tail from a killed writer; tolerated
            raise ValueError(f"{path}:{i + 1}: corrupt event line") from exc
    return events


class EventCursor:
    """Incremental tail reader over one JSONL event stream.

    :func:`read_events` re-parses the whole file on every call — fine for
    one-shot commands, ruinous for a poller (``repro monitor --watch``,
    the observability server) that revisits growing streams forever.  A
    cursor remembers the byte offset after the last *complete* line it
    consumed and each :meth:`poll` reads only what appeared since:

    - A partial final line (a writer killed — or merely buffered — mid
      record) is **not consumed**: the offset stays at the last newline,
      so the record is parsed exactly once, on the poll after the writer
      finishes it.  No duplicates, no drops.
    - A file that shrank below the offset, or whose inode changed, was
      truncated or atomically replaced (rotation); the cursor restarts
      from byte 0 of the new contents.
    - A complete (newline-terminated) line that fails to parse cannot be
      crash truncation, so it raises ``ValueError`` like a mid-file
      corruption in :func:`read_events` does.

    ``consumed_bytes`` counts every byte ever handed to the parser; with
    a static file it stays put across polls — the "zero re-read" property
    the server's tests pin down.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.offset = 0
        self.consumed_bytes = 0
        self.polls = 0
        self._ino: int | None = None

    def poll(self) -> list[Event]:
        """Return every event completed since the last poll."""
        self.polls += 1
        try:
            stat = os.stat(self.path)
        except OSError:
            # Missing (not yet created, or rotated away): forget position
            # so a recreated file is read from its top.
            self.offset = 0
            self._ino = None
            return []
        if (self._ino is not None and stat.st_ino != self._ino) or \
                stat.st_size < self.offset:
            self.offset = 0  # rotated / replaced / truncated
        self._ino = stat.st_ino
        if stat.st_size <= self.offset:
            return []
        with open(self.path, "rb") as fh:
            fh.seek(self.offset)
            chunk = fh.read()
        # Consume complete lines only; a dangling tail waits for its writer.
        end = chunk.rfind(b"\n")
        if end < 0:
            return []
        complete, self.offset = chunk[: end + 1], self.offset + end + 1
        self.consumed_bytes += end + 1
        events: list[Event] = []
        for line in complete.split(b"\n")[:-1]:
            if not line.strip():
                continue
            try:
                events.append(Event.from_payload(
                    json.loads(line.decode("utf-8", errors="replace"))))
            except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
                raise ValueError(
                    f"{self.path}: corrupt event line ending at byte "
                    f"{self.offset}") from exc
        return events


class HeartbeatCache:
    """A ``read_heartbeat`` front that skips re-parsing unchanged files.

    Heartbeats are atomically replaced on every beat, so ``(mtime_ns,
    size, inode)`` changing is exactly "there is a new record".  A poller
    asking about a quiet job costs one ``stat``, not a parse.
    """

    def __init__(self):
        self._entries: dict[Path, tuple[tuple[int, int, int], Heartbeat | None]] = {}

    def read(self, path: str | Path) -> Heartbeat | None:
        path = Path(path)
        try:
            stat = os.stat(path)
        except OSError:
            self._entries.pop(path, None)
            return None
        signature = (stat.st_mtime_ns, stat.st_size, stat.st_ino)
        cached = self._entries.get(path)
        if cached is not None and cached[0] == signature:
            return cached[1]
        beat = read_heartbeat(path)
        self._entries[path] = (signature, beat)
        return beat


def merge_event_streams(paths: Iterable[str | Path]) -> list[Event]:
    """Read several per-job streams and merge them into one timeline.

    The sort is stable on ``(time_s, pid)`` so events sharing a timestamp
    (FakeClock tests; same-instant workers) keep a deterministic order.
    """
    merged: list[Event] = []
    for path in paths:
        merged.extend(read_events(path))
    merged.sort(key=lambda e: (e.time_s, e.pid))
    return merged


@dataclass
class Heartbeat:
    """The latest liveness record one job wrote."""

    pid: int
    benchmark: str
    seed: int
    time_s: float
    attempt: int = 0
    status: str = "running"
    epoch: int = 0
    step: float = 0.0  # cumulative samples seen (the finest progress unit)
    quality: float | None = None
    metrics: dict[str, float] = field(default_factory=dict)

    @property
    def key(self) -> str:
        return f"{self.benchmark}/{self.seed}"

    def age_s(self, now_s: float) -> float:
        return max(now_s - self.time_s, 0.0)


class HeartbeatWriter:
    """Maintains one job's heartbeat file; usable as an event-bus sink.

    Every beat rewrites the whole (tiny) file via write-temp-then-rename,
    so a reader never observes a torn record even if the writer is killed
    mid-beat.  Subscribed to a bus (``bus.subscribe(writer.on_event)``)
    it folds progress events into the record: ``epoch`` events advance
    the epoch/step counters, ``eval`` events update the quality snapshot.
    """

    def __init__(self, path: str | Path, *, pid: int, benchmark: str,
                 seed: int, attempt: int = 0,
                 clock: Callable[[], float] | None = None):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.clock = clock or time.time
        self.record = Heartbeat(pid=pid, benchmark=benchmark, seed=seed,
                                attempt=attempt, time_s=float(self.clock()))

    def beat(self, **updates: Any) -> Heartbeat:
        """Apply field updates, stamp now, and atomically rewrite the file."""
        for name, value in updates.items():
            if not hasattr(self.record, name):
                raise AttributeError(f"heartbeat has no field {name!r}")
            setattr(self.record, name, value)
        self.record.time_s = float(self.clock())
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        tmp.write_text(json.dumps(asdict(self.record), sort_keys=True,
                                  default=_jsonify))
        os.replace(tmp, self.path)
        return self.record

    def on_event(self, event: Event) -> None:
        """Fold one progress event into the record and beat."""
        updates: dict[str, Any] = {}
        if event.name == "epoch":
            if "epoch" in event.args:
                updates["epoch"] = int(event.args["epoch"])
            if "samples_total" in event.args:
                updates["step"] = float(event.args["samples_total"])
        elif event.name == "eval" and "quality" in event.args:
            updates["quality"] = float(event.args["quality"])
            if "epoch" in event.args:
                updates["epoch"] = int(event.args["epoch"])
        self.beat(**updates)


def read_heartbeat(path: str | Path) -> Heartbeat | None:
    """Load a heartbeat file; absent or unreadable files are ``None``.

    Beats are atomic replaces, so a torn record should be impossible —
    but the monitor must never crash on a half-provisioned campaign
    directory, so any parse failure degrades to "no heartbeat".
    """
    path = Path(path)
    if not path.is_file():
        return None
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
        return Heartbeat(
            pid=int(payload["pid"]),
            benchmark=str(payload["benchmark"]),
            seed=int(payload["seed"]),
            time_s=float(payload["time_s"]),
            attempt=int(payload.get("attempt", 0)),
            status=str(payload.get("status", "running")),
            epoch=int(payload.get("epoch", 0)),
            step=float(payload.get("step", 0.0)),
            quality=(None if payload.get("quality") is None
                     else float(payload["quality"])),
            metrics=dict(payload.get("metrics", {})),
        )
    except (json.JSONDecodeError, KeyError, TypeError, ValueError):
        return None
