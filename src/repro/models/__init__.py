"""The seven reference models of the benchmark suite (Table 1), scaled down
but architecturally faithful to the paper's definitions."""

from .resnet import BasicBlockV15, MiniResNet
from .ssd import AnchorGrid, MiniSSD, decode_boxes, encode_boxes, match_anchors
from .roi import roi_align
from .maskrcnn import MiniMaskRCNN
from .gnmt import MiniGNMT
from .transformer import MiniTransformer
from .ncf import NCF
from .minigo import MiniGoNet
from .beam import BeamHypothesis, beam_search_gnmt, beam_search_transformer

__all__ = [
    "BasicBlockV15",
    "MiniResNet",
    "AnchorGrid",
    "MiniSSD",
    "decode_boxes",
    "encode_boxes",
    "match_anchors",
    "roi_align",
    "MiniMaskRCNN",
    "MiniGNMT",
    "MiniTransformer",
    "NCF",
    "MiniGoNet",
    "BeamHypothesis",
    "beam_search_gnmt",
    "beam_search_transformer",
]
