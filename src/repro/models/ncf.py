"""NCF (NeuMF): neural collaborative filtering for recommendation.

§3.1.5: recommendation workloads "are characterized by large embedding
tables, followed by linear layers"; the benchmark model is "Neural
Collaborative Filtering, an instance of Wide and Deep models".  This is
the full NeuMF architecture of He et al. (2017b): a GMF branch (elementwise
product of user/item embeddings) and an MLP branch (concatenated
embeddings through a tower), fused by a final linear layer into an
interaction logit.  Trained with BCE over sampled negatives; evaluated as
HR@10 under leave-one-out.
"""

from __future__ import annotations

import numpy as np

from ..framework import Embedding, Linear, Module, Tensor, functional as F

__all__ = ["NCF"]


class NCF(Module):
    """NeuMF: GMF + MLP with separate embedding tables per branch."""

    def __init__(self, num_users: int, num_items: int, rng: np.random.Generator,
                 gmf_dim: int = 8, mlp_dim: int = 16, mlp_hidden: tuple[int, ...] = (32, 16)):
        super().__init__()
        self.user_gmf = Embedding(num_users, gmf_dim, rng)
        self.item_gmf = Embedding(num_items, gmf_dim, rng)
        self.user_mlp = Embedding(num_users, mlp_dim, rng)
        self.item_mlp = Embedding(num_items, mlp_dim, rng)
        layers = []
        in_dim = 2 * mlp_dim
        for width in mlp_hidden:
            layers.append(Linear(in_dim, width, rng, activation="relu"))
            in_dim = width
        self.mlp_layers = layers
        self.head = Linear(gmf_dim + in_dim, 1, rng)

    def forward(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        """Interaction logits ``(N,)`` for user/item id pairs."""
        gmf = self.user_gmf(users) * self.item_gmf(items)
        h = Tensor.concat([self.user_mlp(users), self.item_mlp(items)], axis=1)
        for layer in self.mlp_layers:
            h = layer(h)
        fused = Tensor.concat([gmf, h], axis=1)
        return self.head(fused).reshape(-1)

    def loss(self, users: np.ndarray, items: np.ndarray, labels: np.ndarray) -> Tensor:
        return F.binary_cross_entropy_with_logits(self.forward(users, items), labels)

    def score(self, users: np.ndarray, items: np.ndarray) -> np.ndarray:
        """Inference scores (no graph) for ranking evaluation."""
        from ..framework import no_grad

        with no_grad():
            return self.forward(users, items).data
