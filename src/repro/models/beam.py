"""Beam-search decoding for the translation models.

The real GNMT and Transformer references decode with beam search; greedy
decoding is the fast default in this repo, and this module provides the
faithful alternative.  The implementation is model-agnostic: it drives any
``step_fn`` that maps (decoder context, last tokens) to next-token
log-probabilities, which both translation models expose through
:func:`beam_search_gnmt` / :func:`beam_search_transformer` wrappers.

Scoring uses length-normalized log-probability (``logp / len**alpha``),
the GNMT paper's heuristic, so beams of different lengths compete fairly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..datasets.translation import BOS, EOS, PAD
from ..framework import Tensor, no_grad

__all__ = ["BeamHypothesis", "beam_search_gnmt", "beam_search_transformer"]


@dataclass(order=True)
class BeamHypothesis:
    """One partial translation: normalized score + token sequence."""

    score: float
    tokens: list[int] = field(compare=False)
    finished: bool = field(default=False, compare=False)
    state: object = field(default=None, compare=False)


def _normalized(logp: float, length: int, alpha: float) -> float:
    return logp / max(length, 1) ** alpha


def _top_tokens(log_probs: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
    idx = np.argpartition(-log_probs, k - 1)[:k]
    order = idx[np.argsort(-log_probs[idx])]
    return order, log_probs[order]


def beam_search_transformer(model, src: np.ndarray, beam_width: int = 4,
                            max_len: int = 24, alpha: float = 0.6) -> list[list[int]]:
    """Beam-search decode a batch with a :class:`MiniTransformer`.

    Decodes each sentence independently (batch size inside the beam is the
    beam width) — simple and adequate at mini scale.
    """
    from ..framework.attention import causal_mask
    from ..framework.functional import log_softmax

    results: list[list[int]] = []
    with no_grad():
        for i in range(src.shape[0]):
            memory, mem_mask = model.encode(src[i : i + 1])
            beams = [BeamHypothesis(score=0.0, tokens=[BOS])]
            raw_scores = {id(beams[0]): 0.0}
            for _ in range(max_len):
                live = [b for b in beams if not b.finished]
                if not live:
                    break
                # One decoder pass per live beam (contexts differ in length
                # only when beams finish, so pad to the longest).
                t = max(len(b.tokens) for b in live)
                dec = np.full((len(live), t), PAD, dtype=np.int64)
                for j, b in enumerate(live):
                    dec[j, : len(b.tokens)] = b.tokens
                tgt_mask = causal_mask(t)[None, None]
                h = model._embed(dec)
                mem = Tensor(np.repeat(memory.data, len(live), axis=0))
                mmask = np.repeat(mem_mask, len(live), axis=0)
                for layer in model.dec_layers:
                    h = layer(h, mem, tgt_mask=tgt_mask, memory_mask=mmask)
                logits = model.out(h)
                candidates: list[BeamHypothesis] = [b for b in beams if b.finished]
                for j, b in enumerate(live):
                    logp = log_softmax(Tensor(logits.data[j, len(b.tokens) - 1][None])).data[0]
                    toks, scores = _top_tokens(logp, beam_width)
                    base = raw_scores[id(b)]
                    for tok, s in zip(toks, scores):
                        raw = base + float(s)
                        hyp = BeamHypothesis(
                            score=_normalized(raw, len(b.tokens), alpha),
                            tokens=b.tokens + [int(tok)],
                            finished=int(tok) == EOS,
                        )
                        raw_scores[id(hyp)] = raw
                        candidates.append(hyp)
                beams = sorted(candidates, reverse=True)[:beam_width]
                if all(b.finished for b in beams):
                    break
            best = max(beams)
            tokens = [t for t in best.tokens[1:] if t not in (EOS, PAD)]
            results.append(tokens)
    return results


def beam_search_gnmt(model, src: np.ndarray, beam_width: int = 4,
                     max_len: int = 24, alpha: float = 0.6) -> list[list[int]]:
    """Beam-search decode a batch with a :class:`MiniGNMT`."""
    from ..framework.functional import log_softmax

    results: list[list[int]] = []
    with no_grad():
        for i in range(src.shape[0]):
            memory, init_states, src_mask = model.encode(src[i : i + 1])
            root = BeamHypothesis(score=0.0, tokens=[BOS], state=init_states)
            beams = [root]
            raw_scores = {id(root): 0.0}
            for _ in range(max_len):
                live = [b for b in beams if not b.finished]
                if not live:
                    break
                candidates: list[BeamHypothesis] = [b for b in beams if b.finished]
                for b in live:
                    last = np.array([[b.tokens[-1]]], dtype=np.int64)  # (1, N=1)
                    emb = model.embed(last)  # (1, 1, E)
                    dec_out, new_states = model.decoder(emb, states=[
                        (h, c) for h, c in b.state
                    ])
                    combined = model._attend(dec_out[0], memory, src_mask)
                    logp = log_softmax(model.out(combined)).data[0]
                    toks, scores = _top_tokens(logp, beam_width)
                    base = raw_scores[id(b)]
                    for tok, s in zip(toks, scores):
                        raw = base + float(s)
                        hyp = BeamHypothesis(
                            score=_normalized(raw, len(b.tokens), alpha),
                            tokens=b.tokens + [int(tok)],
                            finished=int(tok) == EOS,
                            state=new_states,
                        )
                        raw_scores[id(hyp)] = raw
                        candidates.append(hyp)
                beams = sorted(candidates, reverse=True)[:beam_width]
                if all(b.finished for b in beams):
                    break
            best = max(beams)
            results.append([t for t in best.tokens[1:] if t not in (EOS, PAD)])
    return results
