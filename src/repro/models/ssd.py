"""MiniSSD: a single-shot detector over ShapeScenes.

Follows the SSD recipe (Liu et al., 2016) at mini scale: a convolutional
backbone of basic residual blocks (ResNet-34 uses basic blocks — §3.1.2
notes this different block structure is part of the suite's diversity),
a dense grid of anchor boxes over the final feature map, and a multibox
head predicting per-anchor class scores and box offsets.  Training uses
IoU-based anchor matching with hard-negative mining; inference decodes
offsets and applies per-class NMS — covering the detection-specific
compute motifs the paper names (anchors, NMS, sorting).
"""

from __future__ import annotations

import numpy as np

from ..framework import Conv2d, Module, Tensor, functional as F
from ..metrics.detection import Detection, box_iou, nms
from .resnet import BasicBlockV15

__all__ = ["AnchorGrid", "MiniSSD", "encode_boxes", "decode_boxes", "match_anchors"]


def encode_boxes(boxes: np.ndarray, anchors: np.ndarray) -> np.ndarray:
    """Encode xyxy ``boxes`` as SSD offsets relative to xyxy ``anchors``.

    Offsets are ``(dcx/aw, dcy/ah, log(w/aw), log(h/ah))`` — the standard
    parameterization.
    """
    aw = anchors[:, 2] - anchors[:, 0]
    ah = anchors[:, 3] - anchors[:, 1]
    acx = anchors[:, 0] + 0.5 * aw
    acy = anchors[:, 1] + 0.5 * ah
    bw = boxes[:, 2] - boxes[:, 0]
    bh = boxes[:, 3] - boxes[:, 1]
    bcx = boxes[:, 0] + 0.5 * bw
    bcy = boxes[:, 1] + 0.5 * bh
    return np.stack(
        [(bcx - acx) / aw, (bcy - acy) / ah, np.log(bw / aw), np.log(bh / ah)], axis=1
    ).astype(np.float32)


def decode_boxes(offsets: np.ndarray, anchors: np.ndarray) -> np.ndarray:
    """Inverse of :func:`encode_boxes`."""
    aw = anchors[:, 2] - anchors[:, 0]
    ah = anchors[:, 3] - anchors[:, 1]
    acx = anchors[:, 0] + 0.5 * aw
    acy = anchors[:, 1] + 0.5 * ah
    cx = offsets[:, 0] * aw + acx
    cy = offsets[:, 1] * ah + acy
    w = np.exp(np.clip(offsets[:, 2], -4, 4)) * aw
    h = np.exp(np.clip(offsets[:, 3], -4, 4)) * ah
    return np.stack([cx - w / 2, cy - h / 2, cx + w / 2, cy + h / 2], axis=1)


class AnchorGrid:
    """A regular grid of square anchors over a feature map."""

    def __init__(self, image_size: int, feature_size: int, scales: tuple[float, ...] = (9.0, 14.0)):
        self.image_size = image_size
        self.feature_size = feature_size
        self.scales = scales
        stride = image_size / feature_size
        centers = (np.arange(feature_size) + 0.5) * stride
        cy, cx = np.meshgrid(centers, centers, indexing="ij")
        anchors = []
        for scale in scales:
            half = scale / 2
            anchors.append(
                np.stack([cx - half, cy - half, cx + half, cy + half], axis=-1).reshape(-1, 4)
            )
        # Layout: (cell-major within scale, scales concatenated) — must match
        # the head's reshape order.
        self.boxes = np.concatenate(anchors, axis=0)

    def __len__(self) -> int:
        return len(self.boxes)


def match_anchors(
    anchors: np.ndarray,
    gt_boxes: np.ndarray,
    gt_labels: np.ndarray,
    iou_threshold: float = 0.5,
    background: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """SSD matching: anchors with IoU ≥ threshold take the GT's label, and
    every GT claims its single best anchor regardless of threshold.

    Returns ``(labels, matched_gt_index)`` where unmatched anchors get
    ``background`` and matched index -1.
    """
    n = len(anchors)
    labels = np.full(n, background, dtype=np.int64)
    matched = np.full(n, -1, dtype=np.int64)
    if len(gt_boxes) == 0:
        return labels, matched
    iou = box_iou(anchors, gt_boxes)  # (A, G)
    best_gt = iou.argmax(axis=1)
    best_iou = iou.max(axis=1)
    positive = best_iou >= iou_threshold
    # Force-match the best anchor for each ground truth.
    forced = iou.argmax(axis=0)
    positive[forced] = True
    best_gt[forced] = np.arange(len(gt_boxes))
    labels[positive] = gt_labels[best_gt[positive]]
    matched[positive] = best_gt[positive]
    return labels, matched


class MiniSSD(Module):
    """Single-shot detector: backbone + shared multibox head.

    Class layout: index 0 is background; shape classes are ``1..num_classes``.
    """

    def __init__(self, num_classes: int, rng: np.random.Generator, image_size: int = 32,
                 in_channels: int = 1, width: int = 32):
        super().__init__()
        self.num_classes = num_classes
        self.image_size = image_size
        # Backbone: stride-4 feature map of basic blocks.
        self.stem = Conv2d(in_channels, width // 2, 3, rng, stride=1, padding=1,
                           activation="relu")
        self.block1 = BasicBlockV15(width // 2, width, stride=2, rng=rng)
        self.block2 = BasicBlockV15(width, width, stride=2, rng=rng)
        self.feature_size = image_size // 4
        self.anchors = AnchorGrid(image_size, self.feature_size)
        k = len(self.anchors.scales)
        self.cls_head = Conv2d(width, k * (num_classes + 1), 3, rng, padding=1)
        self.box_head = Conv2d(width, k * 4, 3, rng, padding=1)

    def forward(self, images: Tensor) -> tuple[Tensor, Tensor]:
        """Return ``(class_logits, box_offsets)`` of shapes
        ``(N, A, num_classes+1)`` and ``(N, A, 4)``."""
        feat = self.stem(images)
        feat = self.block1(feat)
        feat = self.block2(feat)
        n = images.shape[0]
        k = len(self.anchors.scales)
        c = self.num_classes + 1
        # (N, k*c, H, W) -> (N, k, c, H*W) -> (N, k, H*W, c) -> (N, A, c)
        # with A laid out scale-major then cell-major, matching AnchorGrid.
        cls = self.cls_head(feat).reshape(n, k, c, -1).transpose(0, 1, 3, 2).reshape(n, -1, c)
        box = self.box_head(feat).reshape(n, k, 4, -1).transpose(0, 1, 3, 2).reshape(n, -1, 4)
        return cls, box

    # -- training ------------------------------------------------------------
    def loss(
        self,
        images: Tensor,
        gt_boxes: list[np.ndarray],
        gt_labels: list[np.ndarray],
        negative_ratio: float = 3.0,
    ) -> Tensor:
        """Multibox loss: CE over mined classes + smooth-L1 on positives.

        ``gt_labels`` uses shape-class ids ``0..num_classes-1``; they are
        shifted by +1 internally (0 = background).
        """
        cls_logits, box_offsets = self.forward(images)
        n, a, _ = cls_logits.shape
        anchor_boxes = self.anchors.boxes

        target_labels = np.zeros((n, a), dtype=np.int64)
        target_offsets = np.zeros((n, a, 4), dtype=np.float32)
        positive_mask = np.zeros((n, a), dtype=bool)
        for i in range(n):
            labels, matched = match_anchors(anchor_boxes, gt_boxes[i], gt_labels[i] + 1)
            target_labels[i] = labels
            pos = matched >= 0
            positive_mask[i] = pos
            if pos.any():
                target_offsets[i, pos] = encode_boxes(gt_boxes[i][matched[pos]], anchor_boxes[pos])

        # Hard-negative mining: keep the highest-loss negatives at
        # ``negative_ratio`` per positive (computed on detached logits).
        logits_detached = cls_logits.data
        log_z = np.log(np.exp(logits_detached - logits_detached.max(-1, keepdims=True)).sum(-1))
        neg_loss = log_z - (logits_detached - logits_detached.max(-1, keepdims=True))[..., 0]
        neg_loss[positive_mask] = -np.inf
        n_pos = max(int(positive_mask.sum()), 1)
        n_neg = min(int(negative_ratio * n_pos), int((~positive_mask).sum()))
        flat = neg_loss.reshape(-1)
        neg_idx = np.argpartition(-flat, n_neg - 1)[:n_neg] if n_neg > 0 else np.array([], int)
        selected = positive_mask.copy().reshape(-1)
        selected[neg_idx] = True

        flat_logits = cls_logits.reshape(-1, self.num_classes + 1)
        flat_labels = target_labels.reshape(-1).copy()
        flat_labels[~selected] = -1  # ignore unselected anchors
        cls_loss = F.cross_entropy(flat_logits, flat_labels, ignore_index=-1, reduction="sum") * (
            1.0 / n_pos
        )

        if positive_mask.any():
            pos_idx = np.nonzero(positive_mask.reshape(-1))[0]
            pred = box_offsets.reshape(-1, 4)[pos_idx]
            box_loss = F.smooth_l1_loss(
                pred, target_offsets.reshape(-1, 4)[pos_idx], reduction="sum"
            ) * (1.0 / n_pos)
            return cls_loss + box_loss
        return cls_loss

    # -- inference --------------------------------------------------------------
    def detect(
        self,
        images: Tensor,
        score_threshold: float = 0.35,
        nms_iou: float = 0.45,
        image_ids: list[int] | None = None,
        max_detections: int = 8,
    ) -> list[Detection]:
        """Decode predictions into :class:`Detection` objects."""
        cls_logits, box_offsets = self.forward(images)
        n = cls_logits.shape[0]
        ids = image_ids if image_ids is not None else list(range(n))
        probs = np.exp(cls_logits.data - cls_logits.data.max(-1, keepdims=True))
        probs = probs / probs.sum(-1, keepdims=True)
        detections: list[Detection] = []
        for i in range(n):
            boxes = decode_boxes(box_offsets.data[i], self.anchors.boxes)
            boxes = np.clip(boxes, 0, self.image_size)
            for cls in range(1, self.num_classes + 1):
                scores = probs[i, :, cls]
                keep = scores > score_threshold
                if not keep.any():
                    continue
                kept_boxes = boxes[keep]
                kept_scores = scores[keep]
                order = nms(kept_boxes, kept_scores, nms_iou)[:max_detections]
                for j in order:
                    detections.append(
                        Detection(
                            image_id=ids[i],
                            box=kept_boxes[j],
                            label=cls - 1,  # back to shape-class ids
                            score=float(kept_scores[j]),
                        )
                    )
        return detections
