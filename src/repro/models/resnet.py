"""MiniResNet: a scaled-down ResNet v1.5 for image classification.

§3.1.1 stresses that "there are at least 5 variants of ResNet-50" and that
MLPerf had to pin one down.  The v1.5 variant is defined by three choices,
all of which this model retains at reduced depth/width:

1. **addition after batch normalization** — the residual add happens after
   the final BN of the block, then ReLU (post-activation v1);
2. **no 1×1 convolution in the skip connection of the first residual
   block** — when the first block of a stage keeps spatial size and the
   channel count already matches, the shortcut is the identity;
3. **downsampling applied by the 3×3 convolutions** — when a stage halves
   resolution, the stride-2 lives in the block's 3×3 conv (not in the 1×1
   projection path of the original v1 bottleneck).

For 16×16 synthetic images we use basic (two-conv) blocks in three stages.
"""

from __future__ import annotations

import numpy as np

from ..framework import (
    BatchNorm2d,
    Conv2d,
    GlobalAvgPool2d,
    Linear,
    Module,
    ModuleList,
    Tensor,
)

__all__ = ["BasicBlockV15", "MiniResNet"]


class BasicBlockV15(Module):
    """Two 3×3 convs with BN; residual added after the second BN (v1.5)."""

    def __init__(self, in_channels: int, out_channels: int, stride: int, rng: np.random.Generator):
        super().__init__()
        # v1.5: downsampling stride sits on the 3x3 conv.
        self.conv1 = Conv2d(in_channels, out_channels, 3, rng, stride=stride, padding=1, bias=False)
        self.bn1 = BatchNorm2d(out_channels)
        self.conv2 = Conv2d(out_channels, out_channels, 3, rng, stride=1, padding=1, bias=False)
        self.bn2 = BatchNorm2d(out_channels)
        if stride != 1 or in_channels != out_channels:
            # Projection shortcut (1x1, stride matching the main path).
            self.shortcut = Conv2d(in_channels, out_channels, 1, rng, stride=stride, bias=False)
            self.shortcut_bn = BatchNorm2d(out_channels)
        else:
            # v1.5: identity skip — notably in the first residual block.
            self.shortcut = None
            self.shortcut_bn = None

    def forward(self, x: Tensor) -> Tensor:
        out = self.bn1(self.conv1(x)).relu()
        out = self.bn2(self.conv2(out))  # addition after BN
        skip = x if self.shortcut is None else self.shortcut_bn(self.shortcut(x))
        return (out + skip).relu()


class MiniResNet(Module):
    """Three-stage ResNet v1.5 classifier.

    Default widths (16, 32, 64) over 16×16 inputs give ~180k parameters —
    small enough to train to the quality target in seconds on a CPU while
    keeping the architecture family and its training dynamics.
    """

    def __init__(
        self,
        num_classes: int,
        rng: np.random.Generator,
        in_channels: int = 3,
        widths: tuple[int, ...] = (16, 32, 64),
        blocks_per_stage: int = 2,
    ):
        super().__init__()
        self.stem = Conv2d(in_channels, widths[0], 3, rng, stride=1, padding=1, bias=False)
        self.stem_bn = BatchNorm2d(widths[0])
        stages: list[Module] = []
        channels = widths[0]
        for stage_idx, width in enumerate(widths):
            for block_idx in range(blocks_per_stage):
                stride = 2 if (stage_idx > 0 and block_idx == 0) else 1
                stages.append(BasicBlockV15(channels, width, stride, rng))
                channels = width
        self.blocks = ModuleList(stages)
        self.pool = GlobalAvgPool2d()
        self.fc = Linear(channels, num_classes, rng)

    def forward(self, x: Tensor) -> Tensor:
        out = self.stem_bn(self.stem(x)).relu()
        for block in self.blocks:
            out = block(out)
        return self.fc(self.pool(out))

    def features(self, x: Tensor) -> Tensor:
        """Backbone feature map before pooling (used by detection models)."""
        out = self.stem_bn(self.stem(x)).relu()
        for block in self.blocks:
            out = block(out)
        return out
