"""MiniGoNet: the dual-headed policy/value network for the RL benchmark.

§3.1.4: MiniGo "trains a single network that represents both value and
policy functions".  A small convolutional tower feeds a policy head (move
logits over ``size² + 1`` actions including pass) and a value head (tanh
scalar in [-1, 1] from the side-to-move's perspective).
"""

from __future__ import annotations

import numpy as np

from ..framework import BatchNorm2d, Conv2d, Linear, Module, Tensor, functional as F

__all__ = ["MiniGoNet"]


class MiniGoNet(Module):
    """Policy/value network over Go feature planes ``(N, 3, size, size)``."""

    def __init__(self, board_size: int, rng: np.random.Generator, width: int = 24, blocks: int = 2):
        super().__init__()
        self.board_size = board_size
        self.num_moves = board_size * board_size + 1
        self.stem = Conv2d(3, width, 3, rng, padding=1, bias=False)
        self.stem_bn = BatchNorm2d(width)
        self.tower = [
            (Conv2d(width, width, 3, rng, padding=1, bias=False), BatchNorm2d(width))
            for _ in range(blocks)
        ]
        # Register tower modules for parameter discovery.
        for i, (conv, bn) in enumerate(self.tower):
            setattr(self, f"tower_conv{i}", conv)
            setattr(self, f"tower_bn{i}", bn)
        self.policy_conv = Conv2d(width, 2, 1, rng)
        self.policy_fc = Linear(2 * board_size * board_size, self.num_moves, rng)
        self.value_conv = Conv2d(width, 1, 1, rng)
        self.value_fc1 = Linear(board_size * board_size, 32, rng)
        self.value_fc2 = Linear(32, 1, rng)

    def forward(self, planes: np.ndarray | Tensor) -> tuple[Tensor, Tensor]:
        """Return ``(policy_logits (N, moves), value (N,))``."""
        x = planes if isinstance(planes, Tensor) else Tensor(planes.astype(np.float32))
        h = self.stem_bn(self.stem(x)).relu()
        for conv, bn in self.tower:
            h = (bn(conv(h)) + h).relu()  # residual tower
        n = x.shape[0]
        p = self.policy_conv(h).relu().reshape(n, -1)
        policy_logits = self.policy_fc(p)
        v = self.value_conv(h).relu().reshape(n, -1)
        value = self.value_fc2(self.value_fc1(v).relu()).tanh().reshape(-1)
        return policy_logits, value

    def evaluate(self, board) -> tuple[np.ndarray, float]:
        """Single-position evaluation for MCTS: (policy probs, value)."""
        from ..framework import no_grad

        with no_grad():
            logits, value = self.forward(board.feature_planes()[None])
        p = logits.data[0]
        p = np.exp(p - p.max())
        return p / p.sum(), float(value.data[0])

    def loss(self, planes: np.ndarray, target_policy: np.ndarray,
             target_value: np.ndarray) -> Tensor:
        """AlphaZero loss: policy cross-entropy (against the MCTS visit
        distribution) plus value MSE."""
        logits, value = self.forward(planes)
        logp = F.log_softmax(logits, axis=-1)
        policy_loss = -(logp * Tensor(target_policy.astype(np.float32))).sum() * (
            1.0 / len(planes)
        )
        value_loss = F.mse_loss(value, target_value.astype(np.float32))
        return policy_loss + value_loss
