"""MiniTransformer: attention-based encoder-decoder translation model.

The non-recurrent translation benchmark (§3.1.3): "It consists of an
encoder and decoder, each a stack of 6 blocks" — here a stack of 2 blocks
at d_model=64, trained with the Noam warmup schedule the original used.
"""

from __future__ import annotations

import numpy as np

from ..framework import (
    Embedding,
    Linear,
    Module,
    ModuleList,
    Tensor,
    TransformerDecoderLayer,
    TransformerEncoderLayer,
    causal_mask,
    functional as F,
    positional_encoding,
)
from ..datasets.translation import BOS, EOS, PAD

__all__ = ["MiniTransformer"]


class MiniTransformer(Module):
    """Pre-norm Transformer encoder-decoder over a shared vocabulary."""

    def __init__(self, vocab_size: int, rng: np.random.Generator, d_model: int = 64,
                 num_heads: int = 4, d_ff: int = 128, layers: int = 2, max_len: int = 64):
        super().__init__()
        self.vocab_size = vocab_size
        self.d_model = d_model
        self.embed = Embedding(vocab_size, d_model, rng)
        self.pos = positional_encoding(max_len, d_model)
        self.enc_layers = ModuleList(
            [TransformerEncoderLayer(d_model, num_heads, d_ff, rng) for _ in range(layers)]
        )
        self.dec_layers = ModuleList(
            [TransformerDecoderLayer(d_model, num_heads, d_ff, rng) for _ in range(layers)]
        )
        self.out = Linear(d_model, vocab_size, rng)
        self.scale = float(np.sqrt(d_model))

    def _embed(self, tokens: np.ndarray) -> Tensor:
        t = tokens.shape[1]
        return self.embed(tokens) * self.scale + Tensor(self.pos[None, :t])

    def encode(self, src: np.ndarray) -> tuple[Tensor, np.ndarray]:
        """Encode ``(N, T_src)``; returns (memory, key-padding mask)."""
        pad_mask = (src != PAD)[:, None, None, :]  # (N, 1, 1, T) broadcast over heads & queries
        h = self._embed(src)
        for layer in self.enc_layers:
            h = layer(h, src_mask=pad_mask)
        return h, pad_mask

    def forward(self, src: np.ndarray, dec_input: np.ndarray) -> Tensor:
        """Teacher-forced logits ``(N, T_tgt, V)``."""
        memory, mem_mask = self.encode(src)
        t = dec_input.shape[1]
        tgt_pad = (dec_input != PAD)[:, None, None, :]
        tgt_mask = tgt_pad & causal_mask(t)[None, None]
        h = self._embed(dec_input)
        for layer in self.dec_layers:
            h = layer(h, memory, tgt_mask=tgt_mask, memory_mask=mem_mask)
        return self.out(h)

    def loss(self, src: np.ndarray, dec_input: np.ndarray, dec_target: np.ndarray,
             label_smoothing: float = 0.1) -> Tensor:
        logits = self.forward(src, dec_input)
        return F.cross_entropy(logits, dec_target, ignore_index=PAD,
                               label_smoothing=label_smoothing)

    def greedy_decode(self, src: np.ndarray, max_len: int = 24) -> list[list[int]]:
        """Greedy decoding (re-runs the decoder per step; fine at mini scale)."""
        from ..framework import no_grad

        with no_grad():
            memory, mem_mask = self.encode(src)
            n = src.shape[0]
            dec = np.full((n, 1), BOS, dtype=np.int64)
            finished = np.zeros(n, dtype=bool)
            for _ in range(max_len):
                t = dec.shape[1]
                tgt_mask = causal_mask(t)[None, None]
                h = self._embed(dec)
                for layer in self.dec_layers:
                    h = layer(h, memory, tgt_mask=tgt_mask, memory_mask=mem_mask)
                logits = self.out(h).data[:, -1]
                next_tok = logits.argmax(axis=-1)
                next_tok[finished] = PAD
                finished |= next_tok == EOS
                dec = np.concatenate([dec, next_tok[:, None]], axis=1)
                if finished.all():
                    break
            outputs: list[list[int]] = []
            for i in range(n):
                seq: list[int] = []
                for tok in dec[i, 1:]:
                    if tok in (EOS, PAD):
                        break
                    seq.append(int(tok))
                outputs.append(seq)
            return outputs
