"""RoIAlign: differentiable region-of-interest feature extraction.

§3.1.2 lists "ROIalign" among the layer types that distinguish detection
and segmentation workloads from classification.  This is the bilinear-
sampling RoIAlign of He et al. (2017): each output bin samples the feature
map at its center with bilinear interpolation.  The implementation is
expressed entirely with fancy-indexing ``Tensor`` primitives, so gradients
flow to the feature map without bespoke adjoint code.
"""

from __future__ import annotations

import numpy as np

from ..framework import Tensor

__all__ = ["roi_align"]


def roi_align(
    features: Tensor,
    boxes: np.ndarray,
    batch_indices: np.ndarray,
    output_size: int,
    spatial_scale: float,
) -> Tensor:
    """Extract ``(K, C, S, S)`` aligned features for ``K`` boxes.

    Parameters
    ----------
    features: ``(N, C, H, W)`` feature map.
    boxes: ``(K, 4)`` xyxy boxes in *image* coordinates.
    batch_indices: ``(K,)`` image index of each box.
    output_size: output bins per side (``S``).
    spatial_scale: feature-map stride reciprocal (e.g. 0.25 for stride 4).
    """
    boxes = np.asarray(boxes, dtype=np.float64)
    batch_indices = np.asarray(batch_indices, dtype=np.int64)
    k = len(boxes)
    _, c, h, w = features.shape
    s = output_size
    if k == 0:
        return Tensor(np.zeros((0, c, s, s), dtype=np.float32))

    # Bin-center sample coordinates in feature space, one per output bin.
    x1, y1, x2, y2 = (boxes[:, i] * spatial_scale for i in range(4))
    bin_w = (x2 - x1) / s
    bin_h = (y2 - y1) / s
    grid = np.arange(s) + 0.5
    xs = x1[:, None] + bin_w[:, None] * grid[None, :]  # (K, S)
    ys = y1[:, None] + bin_h[:, None] * grid[None, :]
    # Broadcast to full (K, S, S) grids; shift to pixel-center convention.
    sample_x = np.broadcast_to(xs[:, None, :], (k, s, s)) - 0.5
    sample_y = np.broadcast_to(ys[:, :, None], (k, s, s)) - 0.5

    x0 = np.clip(np.floor(sample_x), 0, w - 1).astype(np.int64)
    y0 = np.clip(np.floor(sample_y), 0, h - 1).astype(np.int64)
    x1i = np.clip(x0 + 1, 0, w - 1)
    y1i = np.clip(y0 + 1, 0, h - 1)
    fx = np.clip(sample_x - x0, 0.0, 1.0).astype(np.float32)
    fy = np.clip(sample_y - y0, 0.0, 1.0).astype(np.float32)

    b = np.broadcast_to(batch_indices[:, None, None], (k, s, s))

    # Gather the four corners: advanced indexing puts (K,S,S) first,
    # channel axis last -> (K, S, S, C).
    v00 = features[b, :, y0, x0]
    v01 = features[b, :, y0, x1i]
    v10 = features[b, :, y1i, x0]
    v11 = features[b, :, y1i, x1i]

    w00 = Tensor(((1 - fy) * (1 - fx))[..., None])
    w01 = Tensor(((1 - fy) * fx)[..., None])
    w10 = Tensor((fy * (1 - fx))[..., None])
    w11 = Tensor((fy * fx)[..., None])

    out = v00 * w00 + v01 * w01 + v10 * w10 + v11 * w11  # (K, S, S, C)
    return out.transpose(0, 3, 1, 2)
