"""MiniMaskRCNN: a two-stage detector with box and mask heads.

Retains the defining structure of Mask R-CNN (He et al., 2017a) that §3.1.2
describes: "a two-stage model, with the first stage proposing regions of
interest, and the second stage processing those regions to compute bounding
boxes and segmentation masks."

- **Stage 1** is a dense proposal network over the backbone feature map:
  per-anchor objectness + box deltas, decoded and NMS-filtered into a small
  set of proposals.
- **Stage 2** RoIAligns each proposal and runs two heads: a box head
  (classification over shape classes + background, plus box refinement)
  and a mask head (per-RoI binary mask logits, class-agnostic at this
  scale).

Quality is measured as (box AP, mask AP) with dual thresholds, mirroring
Table 1's "0.377 Box min AP, 0.339 Mask min AP".
"""

from __future__ import annotations

import numpy as np

from ..framework import Conv2d, Linear, Module, Tensor, functional as F
from ..metrics.detection import Detection, box_iou, nms
from .resnet import BasicBlockV15
from .roi import roi_align
from .ssd import AnchorGrid, decode_boxes, encode_boxes

__all__ = ["MiniMaskRCNN"]


class MiniMaskRCNN(Module):
    """Two-stage detector/segmenter over ShapeScenes."""

    ROI_SIZE = 7
    MASK_SIZE = 14

    def __init__(self, num_classes: int, rng: np.random.Generator, image_size: int = 32,
                 in_channels: int = 1, width: int = 32, proposals_per_image: int = 6):
        super().__init__()
        self.num_classes = num_classes
        self.image_size = image_size
        self.proposals_per_image = proposals_per_image
        # Backbone (stride 4), shared by both stages.
        self.stem = Conv2d(in_channels, width // 2, 3, rng, stride=1, padding=1,
                           activation="relu")
        self.block1 = BasicBlockV15(width // 2, width, stride=2, rng=rng)
        self.block2 = BasicBlockV15(width, width, stride=2, rng=rng)
        self.stride = 4
        feature_size = image_size // self.stride
        self.anchors = AnchorGrid(image_size, feature_size, scales=(10.0,))
        # Stage 1: proposal head.
        self.rpn_conv = Conv2d(width, width, 3, rng, padding=1, activation="relu")
        self.rpn_obj = Conv2d(width, 1, 1, rng)
        self.rpn_box = Conv2d(width, 4, 1, rng)
        # Stage 2: box head.
        roi_feat = width * self.ROI_SIZE * self.ROI_SIZE
        self.box_fc = Linear(roi_feat, 64, rng, activation="relu")
        self.cls_out = Linear(64, num_classes + 1, rng)
        self.box_out = Linear(64, 4, rng)
        # Stage 2: mask head (conv, then 2x nearest upsample, then 1x1).
        self.mask_conv1 = Conv2d(width, width, 3, rng, padding=1, activation="relu")
        self.mask_conv2 = Conv2d(width, width, 3, rng, padding=1, activation="relu")
        self.mask_out = Conv2d(width, 1, 1, rng)

    # -- shared pieces ------------------------------------------------------
    def backbone(self, images: Tensor) -> Tensor:
        feat = self.stem(images)
        feat = self.block1(feat)
        return self.block2(feat)

    def rpn(self, feat: Tensor) -> tuple[Tensor, Tensor]:
        """Return per-anchor objectness logits ``(N, A)`` and deltas ``(N, A, 4)``."""
        h = self.rpn_conv(feat)
        n = feat.shape[0]
        obj = self.rpn_obj(h).reshape(n, -1)
        box = self.rpn_box(h).reshape(n, 4, -1).transpose(0, 2, 1)
        return obj, box

    def propose(self, obj_logits: np.ndarray, box_deltas: np.ndarray,
                max_proposals: int | None = None) -> list[np.ndarray]:
        """Decode + NMS the proposal stage into per-image box arrays."""
        max_proposals = max_proposals or self.proposals_per_image
        proposals: list[np.ndarray] = []
        for i in range(len(obj_logits)):
            boxes = decode_boxes(box_deltas[i], self.anchors.boxes)
            boxes = np.clip(boxes, 0, self.image_size)
            # Degenerate boxes break RoIAlign; enforce a minimum extent.
            boxes[:, 2] = np.maximum(boxes[:, 2], boxes[:, 0] + 2.0)
            boxes[:, 3] = np.maximum(boxes[:, 3], boxes[:, 1] + 2.0)
            keep = nms(boxes, obj_logits[i], iou_threshold=0.5)[:max_proposals]
            proposals.append(boxes[keep])
        return proposals

    def _upsample2x(self, x: Tensor) -> Tensor:
        """Nearest-neighbour 2x spatial upsample via index gather."""
        n, c, h, w = x.shape
        rows = np.repeat(np.arange(h), 2)
        cols = np.repeat(np.arange(w), 2)
        return x[:, :, rows][:, :, :, cols]

    def mask_head(self, roi_feats: Tensor) -> Tensor:
        h = self.mask_conv1(roi_feats)
        h = self.mask_conv2(h)
        h = self._upsample2x(h)
        return self.mask_out(h)[:, 0]  # (K, 2*ROI, 2*ROI) logits

    def box_head(self, roi_feats: Tensor) -> tuple[Tensor, Tensor]:
        flat = roi_feats.reshape(roi_feats.shape[0], -1)
        h = self.box_fc(flat)
        return self.cls_out(h), self.box_out(h)

    # -- training ---------------------------------------------------------------
    def loss(self, images: Tensor, gt_boxes: list[np.ndarray], gt_labels: list[np.ndarray],
             gt_masks: list[np.ndarray]) -> Tensor:
        feat = self.backbone(images)
        obj_logits, box_deltas = self.rpn(feat)
        n = images.shape[0]
        anchor_boxes = self.anchors.boxes

        # --- Stage-1 targets: anchor-level objectness + regression ---
        obj_targets = np.zeros((n, len(anchor_boxes)), dtype=np.float32)
        reg_targets = np.zeros((n, len(anchor_boxes), 4), dtype=np.float32)
        reg_mask = np.zeros((n, len(anchor_boxes)), dtype=bool)
        for i in range(n):
            if len(gt_boxes[i]) == 0:
                continue
            iou = box_iou(anchor_boxes, gt_boxes[i])
            best_gt = iou.argmax(axis=1)
            positive = iou.max(axis=1) >= 0.4
            positive[iou.argmax(axis=0)] = True
            obj_targets[i, positive] = 1.0
            reg_mask[i, positive] = True
            reg_targets[i, positive] = encode_boxes(
                gt_boxes[i][best_gt[positive]], anchor_boxes[positive]
            )

        rpn_cls = F.binary_cross_entropy_with_logits(obj_logits, obj_targets)
        n_pos = max(int(reg_mask.sum()), 1)
        pos_idx = np.nonzero(reg_mask.reshape(-1))[0]
        if len(pos_idx):
            rpn_reg = F.smooth_l1_loss(
                box_deltas.reshape(-1, 4)[pos_idx],
                reg_targets.reshape(-1, 4)[pos_idx],
                reduction="sum",
            ) * (1.0 / n_pos)
        else:
            rpn_reg = Tensor(np.float32(0.0))

        # --- Stage-2: sample proposals (mix of decoded proposals and GT
        # boxes, the standard training trick to guarantee positives) ---
        proposals = self.propose(obj_logits.data, box_deltas.data)
        roi_boxes: list[np.ndarray] = []
        roi_batch: list[int] = []
        roi_labels: list[int] = []
        roi_reg: list[np.ndarray] = []
        roi_mask_targets: list[np.ndarray | None] = []
        for i in range(n):
            cand = np.concatenate([proposals[i], gt_boxes[i]]) if len(gt_boxes[i]) else proposals[i]
            if len(cand) == 0:
                continue
            iou = box_iou(cand, gt_boxes[i]) if len(gt_boxes[i]) else np.zeros((len(cand), 1))
            best = iou.argmax(axis=1)
            best_iou = iou.max(axis=1)
            for j, box in enumerate(cand):
                roi_boxes.append(box)
                roi_batch.append(i)
                if best_iou[j] >= 0.5:
                    g = best[j]
                    roi_labels.append(int(gt_labels[i][g]) + 1)
                    roi_reg.append(encode_boxes(gt_boxes[i][g : g + 1], box[None])[0])
                    roi_mask_targets.append(self._crop_mask(gt_masks[i][g], box))
                else:
                    roi_labels.append(0)
                    roi_reg.append(np.zeros(4, dtype=np.float32))
                    roi_mask_targets.append(None)

        if not roi_boxes:
            return rpn_cls + rpn_reg

        boxes_arr = np.stack(roi_boxes)
        batch_arr = np.array(roi_batch)
        labels_arr = np.array(roi_labels)
        roi_feats = roi_align(feat, boxes_arr, batch_arr, self.ROI_SIZE, 1.0 / self.stride)
        cls_logits, box_refine = self.box_head(roi_feats)
        head_cls = F.cross_entropy(cls_logits, labels_arr)

        pos = labels_arr > 0
        if pos.any():
            pos_idx2 = np.nonzero(pos)[0]
            head_reg = F.smooth_l1_loss(
                box_refine[pos_idx2], np.stack([roi_reg[j] for j in pos_idx2]), reduction="sum"
            ) * (1.0 / len(pos_idx2))
            mask_logits = self.mask_head(roi_feats[pos_idx2])
            mask_targets = np.stack([roi_mask_targets[j] for j in pos_idx2])
            mask_loss = F.binary_cross_entropy_with_logits(mask_logits, mask_targets)
        else:
            head_reg = Tensor(np.float32(0.0))
            mask_loss = Tensor(np.float32(0.0))

        return rpn_cls + rpn_reg + head_cls + head_reg + mask_loss

    def _crop_mask(self, mask: np.ndarray, box: np.ndarray) -> np.ndarray:
        """Resample a GT mask inside ``box`` to the mask-head output grid."""
        size = self.MASK_SIZE
        x1, y1, x2, y2 = box
        ys = np.clip(
            np.floor(np.linspace(y1, y2, size, endpoint=False) + (y2 - y1) / (2 * size)).astype(int),
            0, mask.shape[0] - 1,
        )
        xs = np.clip(
            np.floor(np.linspace(x1, x2, size, endpoint=False) + (x2 - x1) / (2 * size)).astype(int),
            0, mask.shape[1] - 1,
        )
        return mask[np.ix_(ys, xs)].astype(np.float32)

    def _paste_mask(self, mask_prob: np.ndarray, box: np.ndarray) -> np.ndarray:
        """Paste a mask-head output back into image coordinates (boolean)."""
        out = np.zeros((self.image_size, self.image_size), dtype=bool)
        x1, y1, x2, y2 = np.clip(box, 0, self.image_size)
        if x2 <= x1 + 1 or y2 <= y1 + 1:
            return out
        ys = np.arange(int(np.floor(y1)), int(np.ceil(y2)))
        xs = np.arange(int(np.floor(x1)), int(np.ceil(x2)))
        ys = ys[(ys >= 0) & (ys < self.image_size)]
        xs = xs[(xs >= 0) & (xs < self.image_size)]
        if len(ys) == 0 or len(xs) == 0:
            return out
        src_y = np.clip(((ys - y1) / (y2 - y1) * self.MASK_SIZE).astype(int), 0, self.MASK_SIZE - 1)
        src_x = np.clip(((xs - x1) / (x2 - x1) * self.MASK_SIZE).astype(int), 0, self.MASK_SIZE - 1)
        out[np.ix_(ys, xs)] = mask_prob[np.ix_(src_y, src_x)] > 0.5
        return out

    # -- inference -----------------------------------------------------------------
    def detect(self, images: Tensor, score_threshold: float = 0.5,
               image_ids: list[int] | None = None) -> list[Detection]:
        """Full two-stage inference producing boxes, labels, scores, masks."""
        feat = self.backbone(images)
        obj_logits, box_deltas = self.rpn(feat)
        proposals = self.propose(obj_logits.data, box_deltas.data)
        n = images.shape[0]
        ids = image_ids if image_ids is not None else list(range(n))
        detections: list[Detection] = []
        boxes_all = [p for p in proposals if len(p)]
        if not boxes_all:
            return detections
        boxes_arr = np.concatenate(boxes_all)
        batch_arr = np.concatenate([np.full(len(p), i) for i, p in enumerate(proposals) if len(p)])
        roi_feats = roi_align(feat, boxes_arr, batch_arr, self.ROI_SIZE, 1.0 / self.stride)
        cls_logits, box_refine = self.box_head(roi_feats)
        mask_logits = self.mask_head(roi_feats)
        probs = np.exp(cls_logits.data - cls_logits.data.max(-1, keepdims=True))
        probs /= probs.sum(-1, keepdims=True)
        mask_probs = 1.0 / (1.0 + np.exp(-mask_logits.data))
        for j in range(len(boxes_arr)):
            cls = int(probs[j, 1:].argmax()) + 1
            score = float(probs[j, cls])
            if score < score_threshold:
                continue
            refined = decode_boxes(box_refine.data[j : j + 1], boxes_arr[j : j + 1])[0]
            refined = np.clip(refined, 0, self.image_size)
            detections.append(
                Detection(
                    image_id=ids[int(batch_arr[j])],
                    box=refined,
                    label=cls - 1,
                    score=score,
                    mask=self._paste_mask(mask_probs[j], refined),
                )
            )
        # Cross-proposal NMS per image & class.
        final: list[Detection] = []
        for img in set(d.image_id for d in detections):
            for lbl in set(d.label for d in detections if d.image_id == img):
                group = [d for d in detections if d.image_id == img and d.label == lbl]
                keep = nms(np.stack([d.box for d in group]), np.array([d.score for d in group]), 0.4)
                final.extend(group[k] for k in keep)
        return final
