"""MiniGNMT: recurrent seq2seq with attention (the suite's only RNN).

§3.1.3: "GNMT is the only RNN in the suite and consists of an 8-layer
encoder and an 8-layer decoder, each using 1024 LSTM cells with skip
connections."  MiniGNMT keeps the shape of that design — multi-layer LSTM
encoder and decoder with residual (skip) connections between layers and
Luong-style dot-product attention from decoder states over encoder
outputs — at 2 layers and small width.
"""

from __future__ import annotations

import numpy as np

from ..framework import LSTM, Embedding, Linear, Module, Tensor, functional as F
from ..datasets.translation import BOS, EOS, PAD

__all__ = ["MiniGNMT"]


class MiniGNMT(Module):
    """LSTM encoder-decoder with attention over a shared vocabulary."""

    def __init__(self, vocab_size: int, rng: np.random.Generator, embed_dim: int = 48,
                 hidden: int = 64, layers: int = 2):
        super().__init__()
        self.vocab_size = vocab_size
        self.hidden = hidden
        self.embed = Embedding(vocab_size, embed_dim, rng)
        self.encoder = LSTM(embed_dim, hidden, layers, rng, residual=True)
        self.decoder = LSTM(embed_dim, hidden, layers, rng, residual=True)
        self.attn_combine = Linear(2 * hidden, hidden, rng)
        self.out = Linear(hidden, vocab_size, rng)

    # -- encoding ---------------------------------------------------------------
    def encode(self, src: np.ndarray) -> tuple[Tensor, list, np.ndarray]:
        """Encode ``(N, T_src)`` token ids; returns (memory, states, pad mask)."""
        mask = src != PAD  # (N, T)
        emb = self.embed(src.T)  # (T, N, E)
        memory, states = self.encoder(emb, mask=mask.T)
        return memory, states, mask

    def _attend(self, h: Tensor, memory: Tensor, src_mask: np.ndarray) -> Tensor:
        """Luong dot attention: one decoder state against all memory steps.

        ``h``: (N, H); ``memory``: (T, N, H); returns context-combined (N, H).
        """
        mem = memory.transpose(1, 0, 2)  # (N, T, H)
        scores = (mem @ h.reshape(h.shape[0], self.hidden, 1)).reshape(h.shape[0], -1)
        bias = np.where(src_mask, 0.0, -1e9).astype(np.float32)
        weights = F.softmax(scores + Tensor(bias), axis=-1)  # (N, T)
        context = (weights.reshape(weights.shape[0], 1, -1) @ mem).reshape(h.shape[0], self.hidden)
        return self.attn_combine(Tensor.concat([h, context], axis=1)).tanh()

    # -- training -------------------------------------------------------------
    def forward(self, src: np.ndarray, dec_input: np.ndarray) -> Tensor:
        """Teacher-forced logits ``(N, T_tgt, V)``."""
        memory, states, src_mask = self.encode(src)
        emb = self.embed(dec_input.T)  # (T, N, E)
        dec_out, _ = self.decoder(emb, states=states)
        t_steps = dec_out.shape[0]
        logits = []
        for t in range(t_steps):
            combined = self._attend(dec_out[t], memory, src_mask)
            logits.append(self.out(combined))
        return Tensor.stack(logits, axis=1)  # (N, T, V)

    def loss(self, src: np.ndarray, dec_input: np.ndarray, dec_target: np.ndarray) -> Tensor:
        logits = self.forward(src, dec_input)
        return F.cross_entropy(logits, dec_target, ignore_index=PAD)

    # -- inference ---------------------------------------------------------------
    def greedy_decode(self, src: np.ndarray, max_len: int = 24) -> list[list[int]]:
        """Greedy decoding of a batch of source sentences."""
        from ..framework import no_grad

        with no_grad():
            memory, states, src_mask = self.encode(src)
            n = src.shape[0]
            tokens = np.full(n, BOS, dtype=np.int64)
            finished = np.zeros(n, dtype=bool)
            outputs: list[list[int]] = [[] for _ in range(n)]
            for _ in range(max_len):
                emb = self.embed(tokens[None])  # (1, N, E)
                dec_out, states = self.decoder(emb, states=states)
                combined = self._attend(dec_out[0], memory, src_mask)
                logits = self.out(combined).data
                tokens = logits.argmax(axis=-1)
                for i in range(n):
                    if not finished[i]:
                        if tokens[i] == EOS:
                            finished[i] = True
                        else:
                            outputs[i].append(int(tokens[i]))
                if finished.all():
                    break
            return outputs
